//! Ground rules and ground programs.
//!
//! After translation and grounding, every object the semantics manipulates is
//! a ground, existential-free TGD¬ — i.e. a rule `B⁺, ¬B⁻ → H` where `B⁺`,
//! `B⁻` are sets of ground atoms and `H` is a ground atom. Facts are rules
//! with an empty body (`→ α`, as in the paper's `Σ[D] = {True → α | α ∈ D}`).

use gdlog_data::{Database, GroundAtom, Predicate};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A ground TGD¬ without existential quantification: `pos, ¬neg → head`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GroundRule {
    /// The head atom.
    pub head: GroundAtom,
    /// Positive body atoms `B⁺(σ)`.
    pub pos: Vec<GroundAtom>,
    /// Atoms appearing in negative body literals `B⁻(σ)`.
    pub neg: Vec<GroundAtom>,
}

impl GroundRule {
    /// A rule with positive and negative body atoms.
    pub fn new(head: GroundAtom, pos: Vec<GroundAtom>, neg: Vec<GroundAtom>) -> Self {
        GroundRule { head, pos, neg }
    }

    /// A fact `→ head`.
    pub fn fact(head: GroundAtom) -> Self {
        GroundRule {
            head,
            pos: Vec::new(),
            neg: Vec::new(),
        }
    }

    /// Is this rule a fact (empty body)?
    pub fn is_fact(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }

    /// Is the rule positive (no negative body literals)?
    pub fn is_positive(&self) -> bool {
        self.neg.is_empty()
    }

    /// Is the rule's positive body satisfied by `interpretation`?
    pub fn pos_satisfied(&self, interpretation: &Database) -> bool {
        self.pos.iter().all(|a| interpretation.contains(a))
    }

    /// Is the rule's negative body satisfied by `interpretation` (i.e. no
    /// negated atom is present)?
    pub fn neg_satisfied(&self, interpretation: &Database) -> bool {
        self.neg.iter().all(|a| !interpretation.contains(a))
    }

    /// Is the whole rule body satisfied by `interpretation`?
    pub fn body_satisfied(&self, interpretation: &Database) -> bool {
        self.pos_satisfied(interpretation) && self.neg_satisfied(interpretation)
    }

    /// Is the rule (classically) satisfied by `interpretation`?
    pub fn satisfied(&self, interpretation: &Database) -> bool {
        !self.body_satisfied(interpretation) || interpretation.contains(&self.head)
    }

    /// All atoms mentioned by the rule (head, positive and negative body).
    pub fn atoms(&self) -> impl Iterator<Item = &GroundAtom> {
        std::iter::once(&self.head)
            .chain(self.pos.iter())
            .chain(self.neg.iter())
    }
}

impl fmt::Display for GroundRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fact() {
            return write!(f, "-> {}.", self.head);
        }
        let mut first = true;
        for a in &self.pos {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        for a in &self.neg {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "not {a}")?;
            first = false;
        }
        write!(f, " -> {}.", self.head)
    }
}

/// A ground program: a (possibly large) set of ground rules.
///
/// The rule list preserves insertion order but equality and the
/// [`GroundProgram::canonical_rules`] listing are order-insensitive, matching
/// the paper's treatment of programs as *sets* of rules.
///
/// The head set `heads(Σ)` is maintained incrementally in an indexed
/// [`Database`] as rules are pushed, so the grounders' inner loops can borrow
/// it instead of rebuilding a fresh set per saturation round. Each rule is
/// stored once: duplicate detection goes through a map from rule hashes to
/// rows of the dense rule table (the same technique as
/// `gdlog_data::Relation`), not a second full copy of every rule.
///
/// # Snapshots
///
/// [`GroundProgram::snapshot`] freezes the rules appended so far into an
/// `Arc`-shared, append-only log of immutable `Frame`s and returns a new
/// program sharing that log; both sides keep growing independently in their
/// own mutable tails. The chase uses this so every sibling of a chase node
/// shares the parent's grounding prefix structurally instead of deep-cloning
/// the rule table, the dedup buckets and the head set (the head set rides
/// along via [`Database::snapshot`]).
#[derive(Clone, Default, Debug)]
pub struct GroundProgram {
    /// Frozen shared prefix of the rule log (newest frame first).
    base: Option<Arc<Frame>>,
    /// Number of rules in the frozen prefix.
    base_len: usize,
    /// Number of frames in the frozen prefix.
    depth: usize,
    /// Rules appended since the last snapshot.
    rules: Vec<GroundRule>,
    /// Rule hash → rows of `rules` with that hash (collision chain; covers
    /// the mutable tail only — frozen frames carry their own buckets).
    buckets: std::collections::HashMap<u64, Vec<u32>>,
    heads: Database,
}

/// One immutable segment of a [`GroundProgram`]'s shared rule log.
#[derive(Debug)]
struct Frame {
    prev: Option<Arc<Frame>>,
    rules: Vec<GroundRule>,
    buckets: std::collections::HashMap<u64, Vec<u32>>,
}

impl Frame {
    fn contains(&self, hash: u64, rule: &GroundRule) -> bool {
        self.buckets
            .get(&hash)
            .is_some_and(|rows| rows.iter().any(|&r| &self.rules[r as usize] == rule))
    }
}

/// Snapshot chains longer than this are flattened on the next
/// [`GroundProgram::snapshot`] call, bounding the per-`contains` frame walk
/// while keeping the amortized snapshot cost O(tail).
const MAX_FRAME_DEPTH: usize = 16;

fn hash_rule(rule: &GroundRule) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    rule.hash(&mut hasher);
    hasher.finish()
}

impl GroundProgram {
    /// The empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Freeze the rules appended so far into the shared, append-only log and
    /// return a new program sharing the frozen prefix (rules, dedup buckets
    /// and head set are shared structurally, not copied). Both `self` and
    /// the returned snapshot keep growing independently.
    pub fn snapshot(&mut self) -> GroundProgram {
        // Flatten *before* freezing: the collapsed frame is then frozen and
        // shared like any other, so the returned snapshot always has the
        // full rule log behind its base pointer.
        if self.depth >= MAX_FRAME_DEPTH {
            self.flatten();
        }
        if !self.rules.is_empty() {
            self.base_len += self.rules.len();
            self.depth += 1;
            self.base = Some(Arc::new(Frame {
                prev: self.base.take(),
                rules: std::mem::take(&mut self.rules),
                buckets: std::mem::take(&mut self.buckets),
            }));
        }
        GroundProgram {
            base: self.base.clone(),
            base_len: self.base_len,
            depth: self.depth,
            rules: Vec::new(),
            buckets: std::collections::HashMap::new(),
            heads: self.heads.snapshot(),
        }
    }

    /// Collapse the frame chain into a single owned frame (no snapshot is
    /// invalidated: each keeps its own view of the shared log).
    fn flatten(&mut self) {
        let rules: Vec<GroundRule> = self.iter().cloned().collect();
        let heads = std::mem::take(&mut self.heads);
        let mut flat = GroundProgram::new();
        for rule in rules {
            let hash = hash_rule(&rule);
            flat.buckets
                .entry(hash)
                .or_default()
                .push(flat.rules.len() as u32);
            flat.rules.push(rule);
        }
        // The head set is already correct; reattach it instead of re-deriving.
        flat.heads = heads;
        *self = flat;
    }

    /// A snapshot of the head set alone (freezes the head set's tail; the
    /// program itself is left fully usable). Used by grounders that need an
    /// owned, cheap copy of `heads(Σ)` as a fixed reference.
    pub fn heads_snapshot(&mut self) -> Database {
        self.heads.snapshot()
    }

    /// All frozen frames of the rule log, newest first.
    fn frames(&self) -> impl Iterator<Item = &Frame> {
        std::iter::successors(self.base.as_deref(), |frame| frame.prev.as_deref())
    }

    /// Build a program from rules.
    pub fn from_rules<I: IntoIterator<Item = GroundRule>>(rules: I) -> Self {
        let mut p = GroundProgram::new();
        for r in rules {
            p.push(r);
        }
        p
    }

    /// Build a program whose only rules are the facts of a database
    /// (`Σ[D]` in the paper, for the database part).
    pub fn from_database(db: &Database) -> Self {
        Self::from_rules(db.iter().cloned().map(GroundRule::fact))
    }

    /// Add a rule (set semantics: duplicates are ignored, across all
    /// snapshot frames). Returns whether the rule was new.
    pub fn push(&mut self, rule: GroundRule) -> bool {
        let hash = hash_rule(&rule);
        if self.frames().any(|f| f.contains(hash, &rule)) {
            return false;
        }
        let rows = self.buckets.entry(hash).or_default();
        if rows.iter().any(|&r| self.rules[r as usize] == rule) {
            return false;
        }
        rows.push(self.rules.len() as u32);
        self.heads.insert(rule.head.clone());
        self.rules.push(rule);
        true
    }

    /// Add many rules.
    pub fn extend<I: IntoIterator<Item = GroundRule>>(&mut self, rules: I) {
        for r in rules {
            self.push(r);
        }
    }

    /// Union of two programs.
    pub fn union(&self, other: &GroundProgram) -> GroundProgram {
        let mut out = self.clone();
        out.extend(other.iter().cloned());
        out
    }

    /// Does the program contain this exact rule (in any snapshot frame)?
    pub fn contains(&self, rule: &GroundRule) -> bool {
        let hash = hash_rule(rule);
        self.buckets
            .get(&hash)
            .is_some_and(|rows| rows.iter().any(|&r| &self.rules[r as usize] == rule))
            || self.frames().any(|f| f.contains(hash, rule))
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.base_len + self.rules.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over the rules in insertion order (oldest snapshot frame
    /// first, then the mutable tail).
    pub fn iter(&self) -> impl Iterator<Item = &GroundRule> {
        let frames: Vec<&Frame> = self.frames().collect();
        frames
            .into_iter()
            .rev()
            .flat_map(|f| f.rules.iter())
            .chain(self.rules.iter())
    }

    /// Are all rules positive?
    pub fn is_positive(&self) -> bool {
        self.iter().all(GroundRule::is_positive)
    }

    /// The set of head atoms, `heads(Σ)` in the paper (maintained
    /// incrementally; this is a borrow, not a rebuild).
    pub fn heads(&self) -> &Database {
        &self.heads
    }

    /// All atoms mentioned anywhere in the program (its Herbrand base
    /// restricted to mentioned atoms).
    pub fn atoms(&self) -> Database {
        Database::from_atoms(self.iter().flat_map(|r| r.atoms().cloned()))
    }

    /// The predicates mentioned by the program.
    pub fn predicates(&self) -> BTreeSet<Predicate> {
        self.iter()
            .flat_map(|r| r.atoms().map(|a| a.predicate))
            .collect()
    }

    /// Is `interpretation` a classical model of the program?
    pub fn is_model(&self, interpretation: &Database) -> bool {
        self.iter().all(|r| r.satisfied(interpretation))
    }

    /// A canonical, sorted listing of the rules (deterministic across
    /// insertion orders).
    pub fn canonical_rules(&self) -> Vec<GroundRule> {
        let mut v: Vec<GroundRule> = self.iter().cloned().collect();
        v.sort();
        v
    }
}

impl PartialEq for GroundProgram {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|r| other.contains(r))
    }
}

impl Eq for GroundProgram {}

impl FromIterator<GroundRule> for GroundProgram {
    fn from_iter<I: IntoIterator<Item = GroundRule>>(iter: I) -> Self {
        GroundProgram::from_rules(iter)
    }
}

impl fmt::Display for GroundProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.canonical_rules() {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_data::Const;

    fn atom(name: &str, args: &[i64]) -> GroundAtom {
        GroundAtom::make(name, args.iter().map(|&i| Const::Int(i)).collect())
    }

    #[test]
    fn facts_and_rules() {
        let f = GroundRule::fact(atom("Router", &[1]));
        assert!(f.is_fact());
        assert!(f.is_positive());
        let r = GroundRule::new(
            atom("Uninfected", &[1]),
            vec![atom("Router", &[1])],
            vec![atom("Infected", &[1, 1])],
        );
        assert!(!r.is_fact());
        assert!(!r.is_positive());
        assert_eq!(r.atoms().count(), 3);
    }

    #[test]
    fn satisfaction() {
        let r = GroundRule::new(
            atom("Uninfected", &[1]),
            vec![atom("Router", &[1])],
            vec![atom("Infected", &[1, 1])],
        );
        let mut i = Database::new();
        // Body not satisfied: rule trivially satisfied.
        assert!(r.satisfied(&i));
        i.insert(atom("Router", &[1]));
        // Body satisfied (Router present, Infected absent) but head missing.
        assert!(r.body_satisfied(&i));
        assert!(!r.satisfied(&i));
        i.insert(atom("Infected", &[1, 1]));
        // Negative literal now blocks the body.
        assert!(!r.body_satisfied(&i));
        assert!(r.satisfied(&i));
    }

    #[test]
    fn program_set_semantics() {
        let mut p = GroundProgram::new();
        assert!(p.is_empty());
        let r = GroundRule::fact(atom("A", &[]));
        assert!(p.push(r.clone()));
        assert!(!p.push(r.clone()));
        assert_eq!(p.len(), 1);
        assert!(p.contains(&r));

        let q = GroundProgram::from_rules(vec![r.clone(), r.clone()]);
        assert_eq!(p, q);
    }

    #[test]
    fn heads_atoms_predicates() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A", &[1])),
            GroundRule::new(
                atom("B", &[1]),
                vec![atom("A", &[1])],
                vec![atom("C", &[2])],
            ),
        ]);
        assert_eq!(p.heads().len(), 2);
        // The incremental head set matches a from-scratch rebuild.
        let rebuilt = Database::from_atoms(p.iter().map(|r| r.head.clone()));
        assert_eq!(p.heads(), &rebuilt);
        assert_eq!(p.atoms().len(), 3);
        assert_eq!(p.predicates().len(), 3);
        assert!(!p.is_positive());
    }

    #[test]
    fn from_database_wraps_facts() {
        let mut db = Database::new();
        db.insert(atom("Router", &[1]));
        db.insert(atom("Router", &[2]));
        let p = GroundProgram::from_database(&db);
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(GroundRule::is_fact));
        assert_eq!(p.heads(), &db);
    }

    #[test]
    fn is_model_checks_all_rules() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A", &[])),
            GroundRule::new(atom("B", &[]), vec![atom("A", &[])], vec![]),
        ]);
        let mut m = Database::new();
        assert!(!p.is_model(&m));
        m.insert(atom("A", &[]));
        assert!(!p.is_model(&m));
        m.insert(atom("B", &[]));
        assert!(p.is_model(&m));
    }

    #[test]
    fn union_and_equality_are_order_insensitive() {
        let a = GroundRule::fact(atom("A", &[]));
        let b = GroundRule::fact(atom("B", &[]));
        let p1 = GroundProgram::from_rules(vec![a.clone(), b.clone()]);
        let p2 = GroundProgram::from_rules(vec![b, a]);
        assert_eq!(p1, p2);
        assert_eq!(p1.union(&p2), p1);
        assert_eq!(p1.canonical_rules(), p2.canonical_rules());
    }

    #[test]
    fn display_is_readable() {
        let r = GroundRule::new(
            atom("B", &[1]),
            vec![atom("A", &[1])],
            vec![atom("C", &[1])],
        );
        assert_eq!(r.to_string(), "A(1), not C(1) -> B(1).");
        assert_eq!(GroundRule::fact(atom("A", &[1])).to_string(), "-> A(1).");
        let p = GroundProgram::from_rules(vec![r]);
        assert!(p.to_string().contains("-> B(1)."));
    }

    #[test]
    fn snapshots_share_the_rule_log_and_diverge_independently() {
        let mut p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A", &[1])),
            GroundRule::new(atom("B", &[1]), vec![atom("A", &[1])], vec![]),
        ]);
        let mut snap = p.snapshot();
        assert_eq!(snap, p);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.heads(), p.heads());

        // Divergent growth.
        assert!(p.push(GroundRule::fact(atom("C", &[1]))));
        assert!(snap.push(GroundRule::fact(atom("D", &[1]))));
        assert!(p.contains(&GroundRule::fact(atom("C", &[1]))));
        assert!(!p.contains(&GroundRule::fact(atom("D", &[1]))));
        assert!(snap.contains(&GroundRule::fact(atom("D", &[1]))));
        assert_eq!(p.len(), 3);
        assert_eq!(snap.len(), 3);
        assert_eq!(p.iter().count(), 3);

        // Duplicates across the frame boundary are rejected, and the head
        // sets track each side independently.
        assert!(!snap.push(GroundRule::fact(atom("A", &[1]))));
        assert!(p.heads().contains(&atom("C", &[1])));
        assert!(!p.heads().contains(&atom("D", &[1])));
        assert!(snap.heads().contains(&atom("D", &[1])));

        // Equality and canonical listings behave like flat programs.
        let flat = GroundProgram::from_rules(snap.iter().cloned());
        assert_eq!(snap, flat);
        assert_eq!(snap.canonical_rules(), flat.canonical_rules());
    }

    #[test]
    fn deep_snapshot_chains_are_flattened() {
        let mut p = GroundProgram::new();
        let mut last = GroundProgram::new();
        for i in 0..100 {
            p.push(GroundRule::fact(atom("A", &[i])));
            last = p.snapshot();
        }
        assert_eq!(p.len(), 100);
        assert_eq!(p.iter().count(), 100);
        assert_eq!(p.heads().len(), 100);
        let rebuilt = Database::from_atoms(p.iter().map(|r| r.head.clone()));
        assert_eq!(p.heads(), &rebuilt);
        // The *returned* snapshots survive flattening rounds too: the
        // collapsed frame is frozen and shared, never dropped.
        assert_eq!(last, p);
        assert_eq!(last.iter().count(), 100);
        assert_eq!(last.heads().len(), 100);
        assert!(last.contains(&GroundRule::fact(atom("A", &[0]))));
    }
}

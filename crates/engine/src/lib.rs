//! # gdlog-engine — ground Datalog¬ programs and stable models
//!
//! This crate implements the model-theoretic machinery of Section 2 ("TGDs
//! with Stable Negation") of *Generative Datalog with Stable Negation*, for
//! the ground, existential-free programs the generative layer produces:
//!
//! * [`GroundRule`] / [`GroundProgram`] — ground TGD¬ rules
//!   `B⁺, ¬B⁻ → H` and (possibly large) sets thereof,
//! * [`least_model()`](least_model::least_model) — the minimal model of a ground *positive* program
//!   (semi-naive fixpoint),
//! * [`reduct()`](reduct::reduct) — the Gelfond–Lifschitz reduct of a ground program w.r.t. an
//!   interpretation,
//! * [`is_stable_model`] / [`stable_models`] — checking and enumerating the
//!   stable models `sms(Σ)` (the classical models of `SM[Σ]`) with a
//!   component-split, propagating branch-and-prune search,
//! * [`naive_stable_models`] — the original exhaustive `2^k` enumerator,
//!   retained as the equivalence oracle for the search above,
//! * [`well_founded`] — the well-founded (alternating fixpoint) approximation
//!   used to prune the stable-model search,
//! * [`stratified`] — the linear-time evaluation of stratified programs,
//!   which have exactly one stable model (used by Proposition 5.2),
//! * [`DependencyGraph`] — predicate-level dependency graphs, strongly
//!   connected components and topological strata (Figure 1 / Section 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod depgraph;
pub mod ground;
pub mod least_model;
pub mod naive_stable;
pub mod reduct;
pub mod stable;
pub mod stratified;
pub mod wellfounded;

pub use cancel::{CancelToken, DeadlineGuard};
pub use depgraph::{connected_components, sccs_of, DependencyGraph, EdgeSign, Stratification};
pub use ground::{GroundProgram, GroundRule};
pub use least_model::least_model;
pub use naive_stable::naive_stable_models;
pub use reduct::reduct;
pub use stable::{
    is_stable_model, stable_models, stable_models_with_cancel, StableError, StableModelLimits,
};
pub use stratified::{stratified_model, StratifiedError};
pub use wellfounded::{well_founded, WellFounded};

#[cfg(test)]
mod send_sync_audit {
    //! Chase siblings extend `Arc`-shared `GroundProgram` snapshot frames
    //! from different worker threads; this is the compile-time audit that
    //! the engine layer is (and stays) `Send + Sync`.
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn ground_programs_and_models_are_send_and_sync() {
        assert_send_sync::<GroundRule>();
        assert_send_sync::<GroundProgram>();
        assert_send_sync::<StableModelLimits>();
        assert_send_sync::<WellFounded>();
        assert_send_sync::<DependencyGraph>();
        assert_send_sync::<Stratification>();
    }
}

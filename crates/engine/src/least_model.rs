//! Least models of positive ground programs.
//!
//! A ground program without negation has a unique minimal (least) model,
//! computed here by forward chaining with a counting index (each rule keeps a
//! counter of unsatisfied positive body atoms, so the total work is linear in
//! the total body size).

use crate::ground::{GroundProgram, GroundRule};
use gdlog_data::{Database, GroundAtom};
use std::collections::HashMap;

/// Compute the least model of a *positive* ground program.
///
/// Negative body literals are not permitted; in debug builds their presence
/// panics (use [`crate::reduct()`](crate::reduct::reduct) first to eliminate them). In release builds
/// rules with negative literals are treated as violating this contract and
/// are ignored, which keeps the function total but is never relied upon by
/// the rest of the workspace.
pub fn least_model(program: &GroundProgram) -> Database {
    debug_assert!(
        program.is_positive(),
        "least_model expects a positive program; apply the reduct first"
    );
    least_model_of(program.iter().filter(|r| r.is_positive()))
}

/// Forward chaining over an iterator of positive rules.
pub(crate) fn least_model_of<'a, I>(rules: I) -> Database
where
    I: IntoIterator<Item = &'a GroundRule>,
{
    let rules: Vec<&GroundRule> = rules.into_iter().collect();
    // counts[i] = number of distinct positive body atoms of rule i not yet
    // derived; watchers maps an atom to the rules waiting on it.
    let mut counts: Vec<usize> = Vec::with_capacity(rules.len());
    let mut watchers: HashMap<&GroundAtom, Vec<usize>> = HashMap::new();
    let mut queue: Vec<usize> = Vec::new();

    for (i, rule) in rules.iter().enumerate() {
        // Deduplicate body atoms so the counter matches the watcher
        // structure; bodies are tiny, so a first-occurrence walk over the
        // preceding atoms beats allocating a sorted copy per rule.
        let mut distinct = 0usize;
        for (j, atom) in rule.pos.iter().enumerate() {
            if rule.pos[..j].contains(atom) {
                continue;
            }
            distinct += 1;
            watchers.entry(atom).or_default().push(i);
        }
        counts.push(distinct);
        if distinct == 0 {
            queue.push(i);
        }
    }

    let mut model = Database::new();
    while let Some(rule_idx) = queue.pop() {
        let head = &rules[rule_idx].head;
        if !model.insert(head.clone()) {
            continue;
        }
        if let Some(waiting) = watchers.get(head) {
            for &w in waiting {
                counts[w] -= 1;
                if counts[w] == 0 {
                    queue.push(w);
                }
            }
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_data::Const;

    fn atom(name: &str, args: &[i64]) -> GroundAtom {
        GroundAtom::make(name, args.iter().map(|&i| Const::Int(i)).collect())
    }

    #[test]
    fn facts_only() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A", &[1])),
            GroundRule::fact(atom("B", &[2])),
        ]);
        let m = least_model(&p);
        assert_eq!(m.len(), 2);
        assert!(m.contains(&atom("A", &[1])));
    }

    #[test]
    fn transitive_closure() {
        // Edge facts along a path 1 → 2 → 3 → 4 and the usual TC rules,
        // pre-grounded over the relevant pairs.
        let mut p = GroundProgram::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            p.push(GroundRule::fact(atom("E", &[a, b])));
        }
        for a in 1..=4 {
            for b in 1..=4 {
                p.push(GroundRule::new(
                    atom("T", &[a, b]),
                    vec![atom("E", &[a, b])],
                    vec![],
                ));
                for c in 1..=4 {
                    p.push(GroundRule::new(
                        atom("T", &[a, c]),
                        vec![atom("T", &[a, b]), atom("E", &[b, c])],
                        vec![],
                    ));
                }
            }
        }
        let m = least_model(&p);
        let t_atoms: Vec<_> = m.iter().filter(|a| a.predicate.name() == "T").collect();
        // Pairs (1,2),(1,3),(1,4),(2,3),(2,4),(3,4).
        assert_eq!(t_atoms.len(), 6);
        assert!(m.contains(&atom("T", &[1, 4])));
        assert!(!m.contains(&atom("T", &[4, 1])));
    }

    #[test]
    fn unreachable_heads_are_not_derived() {
        let p = GroundProgram::from_rules(vec![GroundRule::new(
            atom("B", &[]),
            vec![atom("A", &[])],
            vec![],
        )]);
        let m = least_model(&p);
        assert!(m.is_empty());
    }

    #[test]
    fn duplicate_body_atoms_do_not_stall_derivation() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A", &[])),
            GroundRule::new(atom("B", &[]), vec![atom("A", &[]), atom("A", &[])], vec![]),
        ]);
        let m = least_model(&p);
        assert!(m.contains(&atom("B", &[])));
    }

    #[test]
    fn cyclic_positive_rules_reach_fixpoint() {
        // A :- B. B :- A. with no facts: least model is empty.
        let p = GroundProgram::from_rules(vec![
            GroundRule::new(atom("A", &[]), vec![atom("B", &[])], vec![]),
            GroundRule::new(atom("B", &[]), vec![atom("A", &[])], vec![]),
        ]);
        assert!(least_model(&p).is_empty());

        // Adding a fact for A derives both.
        let p2 = {
            let mut p2 = p.clone();
            p2.push(GroundRule::fact(atom("A", &[])));
            p2
        };
        let m = least_model(&p2);
        assert!(m.contains(&atom("A", &[])) && m.contains(&atom("B", &[])));
    }

    #[test]
    fn least_model_is_a_model_and_minimal() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A", &[])),
            GroundRule::new(atom("B", &[]), vec![atom("A", &[])], vec![]),
            GroundRule::new(atom("C", &[]), vec![atom("B", &[])], vec![]),
        ]);
        let m = least_model(&p);
        assert!(p.is_model(&m));
        // Removing any atom breaks modelhood: minimality for this chain.
        for a in m.iter() {
            let smaller = Database::from_atoms(m.iter().filter(|x| *x != a).cloned());
            assert!(!p.is_model(&smaller));
        }
    }
}

//! Predicate-level dependency graphs, strongly connected components and
//! stratification.
//!
//! Section 5 of the paper defines the dependency graph `dg(Π)` of a program:
//! vertices are the predicates of `sch(Π)` and for every rule there is a
//! positive (resp. negative) edge from each predicate of `B⁺` (resp. `B⁻`) to
//! the head predicate. A program has *stratified negation* if no cycle goes
//! through a negative edge; the strongly connected components then admit a
//! topological ordering into strata (used by the perfect grounder,
//! Definition 5.1, and illustrated in Figure 1).
//!
//! This module implements the graph generically over any rule shape by taking
//! explicit edges, plus a convenience constructor from ground programs.

use crate::ground::GroundProgram;
use gdlog_data::Predicate;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The sign of a dependency edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeSign {
    /// The body predicate occurs in a positive literal.
    Positive,
    /// The body predicate occurs in a negative literal.
    Negative,
}

/// The dependency (multi)graph of a program.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    vertices: BTreeSet<Predicate>,
    /// Edges `from → to` with their sign; a pair may carry both signs.
    edges: BTreeSet<(Predicate, Predicate, EdgeSign)>,
}

impl DependencyGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the dependency graph of a ground program.
    pub fn from_ground_program(program: &GroundProgram) -> Self {
        let mut g = Self::new();
        for rule in program.iter() {
            g.add_vertex(rule.head.predicate);
            for a in &rule.pos {
                g.add_edge(a.predicate, rule.head.predicate, EdgeSign::Positive);
            }
            for a in &rule.neg {
                g.add_edge(a.predicate, rule.head.predicate, EdgeSign::Negative);
            }
        }
        g
    }

    /// Add an isolated vertex.
    pub fn add_vertex(&mut self, p: Predicate) {
        self.vertices.insert(p);
    }

    /// Add an edge `from → to` with the given sign (vertices are added as
    /// needed).
    pub fn add_edge(&mut self, from: Predicate, to: Predicate, sign: EdgeSign) {
        self.vertices.insert(from);
        self.vertices.insert(to);
        self.edges.insert((from, to, sign));
    }

    /// All vertices.
    pub fn vertices(&self) -> impl Iterator<Item = &Predicate> {
        self.vertices.iter()
    }

    /// All edges as `(from, to, sign)`.
    pub fn edges(&self) -> impl Iterator<Item = &(Predicate, Predicate, EdgeSign)> {
        self.edges.iter()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Does `to` depend on `from` (is there a directed path)?
    pub fn depends_on(&self, to: &Predicate, from: &Predicate) -> bool {
        if to == from && self.edges.iter().any(|(f, t, _)| f == t && f == from) {
            return true;
        }
        // BFS from `from`.
        let succ = self.successors();
        let mut seen = BTreeSet::new();
        let mut stack = vec![*from];
        while let Some(v) = stack.pop() {
            if let Some(next) = succ.get(&v) {
                for n in next {
                    if *n == *to {
                        return true;
                    }
                    if seen.insert(*n) {
                        stack.push(*n);
                    }
                }
            }
        }
        false
    }

    fn successors(&self) -> BTreeMap<Predicate, BTreeSet<Predicate>> {
        let mut map: BTreeMap<Predicate, BTreeSet<Predicate>> = BTreeMap::new();
        for (f, t, _) in &self.edges {
            map.entry(*f).or_default().insert(*t);
        }
        map
    }

    /// The strongly connected components in topological (bottom-up) order of
    /// the condensation: a component is listed before every component that
    /// depends on it.
    pub fn sccs(&self) -> Vec<Vec<Predicate>> {
        let verts: Vec<Predicate> = self.vertices.iter().copied().collect();
        let index_of: BTreeMap<Predicate, usize> =
            verts.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); verts.len()];
        for (f, t, _) in &self.edges {
            succ[index_of[f]].push(index_of[t]);
        }
        for s in &mut succ {
            s.sort_unstable();
            s.dedup();
        }
        sccs_of(verts.len(), &succ)
            .into_iter()
            .map(|comp| {
                let mut comp: Vec<Predicate> = comp.into_iter().map(|i| verts[i]).collect();
                comp.sort();
                comp
            })
            .collect()
    }

    /// Compute a stratification: the SCCs in topological order
    /// (`C₁, …, Cₙ` such that no predicate of `Cᵢ` depends on one of `Cⱼ` for
    /// `j > i`). Returns an error if some cycle goes through a negative edge
    /// (the program is not stratified).
    pub fn stratify(&self) -> Result<Stratification, NotStratified> {
        let sccs = self.sccs();
        // Map predicate → component index (in Tarjan's reverse-topological
        // output, which is already a valid bottom-up ordering).
        let mut component_of: BTreeMap<Predicate, usize> = BTreeMap::new();
        for (i, comp) in sccs.iter().enumerate() {
            for p in comp {
                component_of.insert(*p, i);
            }
        }
        // A negative edge inside a component means a cycle through negation.
        for (f, t, sign) in &self.edges {
            if *sign == EdgeSign::Negative && component_of[f] == component_of[t] {
                return Err(NotStratified { from: *f, to: *t });
            }
        }
        Ok(Stratification {
            strata: sccs,
            component_of,
        })
    }

    /// Is the program stratified (no cycle through a negative edge)?
    pub fn is_stratified(&self) -> bool {
        self.stratify().is_ok()
    }
}

impl fmt::Display for DependencyGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "digraph dependencies {{")?;
        for v in &self.vertices {
            writeln!(f, "  \"{v}\";")?;
        }
        for (from, to, sign) in &self.edges {
            let style = match sign {
                EdgeSign::Positive => "solid",
                EdgeSign::Negative => "dashed",
            };
            writeln!(f, "  \"{from}\" -> \"{to}\" [style={style}];")?;
        }
        write!(f, "}}")
    }
}

/// The strongly connected components of an index-based directed graph, in
/// topological (bottom-up) order of the condensation: a component is listed
/// before every component that depends on it (has an edge *from* it).
///
/// Computed with an iterative Tarjan algorithm (which yields the reverse
/// order) followed by a reversal. This is the graph kernel shared by the
/// predicate-level [`DependencyGraph::sccs`] (stratification, Section 5) and
/// the ground-atom-level residual decomposition of the stable-model search
/// ([`crate::stable`]): callers map their vertices to `0..n` and pass
/// deduplicated adjacency lists.
pub fn sccs_of(n: usize, succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    debug_assert_eq!(succ.len(), n);
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        edge: usize,
    }
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames = vec![Frame { v: start, edge: 0 }];
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(frame) = frames.last_mut() {
            let v = frame.v;
            if frame.edge < succ[v].len() {
                let w = succ[v][frame.edge];
                frame.edge += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push(Frame { v: w, edge: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
                frames.pop();
                if let Some(parent) = frames.last() {
                    let pv = parent.v;
                    low[pv] = low[pv].min(low[v]);
                }
            }
        }
    }
    // Tarjan emits components in reverse topological order; flip it so
    // dependencies come first (the `C₁, …, Cₙ` ordering of Section 5).
    out.reverse();
    out
}

/// The connected components of an index-based *undirected* graph (given as a
/// directed adjacency that is symmetrized internally), each sorted, ordered
/// by smallest member.
///
/// This is the independence kernel shared with the chase-factorization
/// analysis (`gdlog-core::factor`): two vertices land in the same component
/// exactly when some chain of edges connects them in either direction, so
/// distinct components share no dependencies at all. Implemented as
/// [`sccs_of`] over the symmetrized adjacency — in an undirected graph the
/// strongly connected components *are* the connected components.
pub fn connected_components(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    debug_assert_eq!(adj.len(), n);
    let mut sym: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, next) in adj.iter().enumerate() {
        for &w in next {
            sym[v].push(w);
            sym[w].push(v);
        }
    }
    for s in &mut sym {
        s.sort_unstable();
        s.dedup();
    }
    let mut comps = sccs_of(n, &sym);
    // `sccs_of` sorts each component internally; order the components
    // themselves canonically by their smallest member.
    comps.sort_by_key(|c| c.first().copied().unwrap_or(usize::MAX));
    comps
}

/// Error returned when a program is not stratified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotStratified {
    /// Source predicate of a negative edge inside a cycle.
    pub from: Predicate,
    /// Target predicate of that edge.
    pub to: Predicate,
}

impl fmt::Display for NotStratified {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "not stratified: negative edge {} -> {} lies on a cycle",
            self.from, self.to
        )
    }
}

impl std::error::Error for NotStratified {}

/// A stratification: the SCCs of the dependency graph in bottom-up
/// topological order.
#[derive(Clone, Debug)]
pub struct Stratification {
    strata: Vec<Vec<Predicate>>,
    component_of: BTreeMap<Predicate, usize>,
}

impl Stratification {
    /// The strata `C₁, …, Cₙ` in topological (bottom-up) order.
    pub fn strata(&self) -> &[Vec<Predicate>] {
        &self.strata
    }

    /// Number of strata.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// Is the stratification empty (no predicates)?
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// The stratum index of a predicate, if it occurs in the graph.
    pub fn stratum_of(&self, p: &Predicate) -> Option<usize> {
        self.component_of.get(p).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GroundRule;
    use gdlog_data::{Const, GroundAtom};

    fn pred(name: &str, arity: usize) -> Predicate {
        Predicate::new(name, arity)
    }

    fn atom1(name: &str, arg: i64) -> GroundAtom {
        GroundAtom::make(name, vec![Const::Int(arg)])
    }

    #[test]
    fn edges_and_vertices() {
        let mut g = DependencyGraph::new();
        g.add_edge(pred("A", 1), pred("B", 1), EdgeSign::Positive);
        g.add_edge(pred("B", 1), pred("C", 1), EdgeSign::Negative);
        g.add_vertex(pred("D", 0));
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(g.depends_on(&pred("C", 1), &pred("A", 1)));
        assert!(!g.depends_on(&pred("A", 1), &pred("C", 1)));
        assert!(!g.depends_on(&pred("D", 0), &pred("A", 1)));
    }

    #[test]
    fn sccs_of_a_cycle() {
        let mut g = DependencyGraph::new();
        g.add_edge(pred("A", 0), pred("B", 0), EdgeSign::Positive);
        g.add_edge(pred("B", 0), pred("A", 0), EdgeSign::Positive);
        g.add_edge(pred("B", 0), pred("C", 0), EdgeSign::Positive);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 2);
        // The {A, B} component must come before {C} (bottom-up order).
        let ab_idx = sccs.iter().position(|c| c.len() == 2).unwrap();
        let c_idx = sccs.iter().position(|c| c == &vec![pred("C", 0)]).unwrap();
        assert!(ab_idx < c_idx);
    }

    #[test]
    fn stratified_detection() {
        // Positive cycle + negation out of the cycle: stratified.
        let mut g = DependencyGraph::new();
        g.add_edge(pred("A", 0), pred("B", 0), EdgeSign::Positive);
        g.add_edge(pred("B", 0), pred("A", 0), EdgeSign::Positive);
        g.add_edge(pred("A", 0), pred("C", 0), EdgeSign::Negative);
        assert!(g.is_stratified());
        let s = g.stratify().unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.stratum_of(&pred("A", 0)) < s.stratum_of(&pred("C", 0)));
        assert_eq!(s.stratum_of(&pred("Missing", 0)), None);
        assert!(!s.is_empty());

        // Negative edge on a cycle: not stratified.
        let mut g2 = DependencyGraph::new();
        g2.add_edge(pred("A", 0), pred("B", 0), EdgeSign::Negative);
        g2.add_edge(pred("B", 0), pred("A", 0), EdgeSign::Positive);
        assert!(!g2.is_stratified());
        let err = g2.stratify().unwrap_err();
        assert!(err.to_string().contains("not stratified"));
    }

    #[test]
    fn figure_1_dependency_graph() {
        // The Appendix E program:
        //   Dime(x) → DimeTail(x, Flip)          (Dime → DimeTail, positive)
        //   DimeTail(x,1) → SomeDimeTail         (positive)
        //   Quarter(x), ¬SomeDimeTail → QuarterTail(x, Flip)
        let mut g = DependencyGraph::new();
        g.add_edge(pred("Dime", 1), pred("DimeTail", 2), EdgeSign::Positive);
        g.add_edge(
            pred("DimeTail", 2),
            pred("SomeDimeTail", 0),
            EdgeSign::Positive,
        );
        g.add_edge(
            pred("Quarter", 1),
            pred("QuarterTail", 2),
            EdgeSign::Positive,
        );
        g.add_edge(
            pred("SomeDimeTail", 0),
            pred("QuarterTail", 2),
            EdgeSign::Negative,
        );
        assert!(g.is_stratified());
        let s = g.stratify().unwrap();
        // Five singleton components.
        assert_eq!(s.len(), 5);
        assert!(
            s.stratum_of(&pred("SomeDimeTail", 0)).unwrap()
                < s.stratum_of(&pred("QuarterTail", 2)).unwrap()
        );
        assert!(
            s.stratum_of(&pred("Dime", 1)).unwrap() < s.stratum_of(&pred("DimeTail", 2)).unwrap()
        );
        let dot = g.to_string();
        assert!(dot.contains("dashed"));
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn from_ground_program() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom1("Router", 1)),
            GroundRule::new(
                atom1("Uninfected", 1),
                vec![atom1("Router", 1)],
                vec![atom1("Infected", 1)],
            ),
        ]);
        let g = DependencyGraph::from_ground_program(&p);
        assert!(g.vertex_count() >= 3);
        assert!(g.is_stratified());
        assert!(g
            .edges()
            .any(|(f, _, s)| f.name() == "Infected" && *s == EdgeSign::Negative));
    }

    #[test]
    fn connected_components_symmetrize_and_order() {
        // Directed edges 0→1, 3→2, isolated 4: components {0,1}, {2,3}, {4}
        // regardless of edge direction, ordered by smallest member.
        let adj = vec![vec![1], vec![], vec![], vec![2], vec![]];
        assert_eq!(
            connected_components(5, &adj),
            vec![vec![0, 1], vec![2, 3], vec![4]]
        );
        // A chain through both directions collapses into one component.
        let chain = vec![vec![1], vec![], vec![1], vec![2]];
        assert_eq!(connected_components(4, &chain), vec![vec![0, 1, 2, 3]]);
        assert!(connected_components(0, &[]).is_empty());
    }

    #[test]
    fn self_negation_is_not_stratified() {
        let mut g = DependencyGraph::new();
        g.add_edge(pred("A", 0), pred("A", 0), EdgeSign::Negative);
        assert!(!g.is_stratified());
        assert!(g.depends_on(&pred("A", 0), &pred("A", 0)));
    }
}

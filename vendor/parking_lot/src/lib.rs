//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of `parking_lot` it actually uses: non-poisoning
//! [`Mutex`] and [`RwLock`] wrappers over the `std::sync` primitives. The
//! API is call-compatible with `parking_lot` 0.12 for the methods provided,
//! so switching back to the real crate is a one-line `Cargo.toml` change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock that, unlike [`std::sync::RwLock`], does not expose
/// lock poisoning: a panic while holding the lock simply releases it.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A mutual-exclusion lock without poisoning, mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex around `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn panicking_writer_does_not_poison() {
        let lock = std::sync::Arc::new(RwLock::new(0u32));
        let cloned = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = cloned.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panicking holder.
        assert_eq!(*lock.read(), 0);
    }
}

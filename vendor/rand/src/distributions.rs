//! The [`Standard`] distribution backing `Rng::gen`, and uniform ranges
//! backing `Rng::gen_range`.

use crate::{Rng, RngCore};

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform `[0, 1)` for floats,
/// uniform over the full range for integers, a fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, as in upstream rand.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($ty:ty => $next:ident),* $(,)?) => {
        $(
            impl Distribution<$ty> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.$next() as $ty
                }
            }
        )*
    };
}

standard_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i128 {
        let v: u128 = Standard.sample(rng);
        v as i128
    }
}

/// Uniform sampling over ranges (the `gen_range` machinery).
pub mod uniform {
    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// Ranges that can produce a uniformly distributed `T`.
    pub trait SampleRange<T> {
        /// Draw one value from the range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Multiply-shift reduction of a `u64` onto `[0, span)` (Lemire); the
    /// bias is at most `span / 2^64`, negligible for this workspace's use.
    fn reduce(x: u64, span: u64) -> u64 {
        ((x as u128 * span as u128) >> 64) as u64
    }

    // Spans of signed ranges are computed in the unsigned type of the same
    // width so that e.g. `-100i8..100` does not overflow.
    macro_rules! sample_range_int {
        ($($ty:ty => $uty:ty),* $(,)?) => {
            $(
                impl SampleRange<$ty> for Range<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        assert!(self.start < self.end, "empty gen_range");
                        let span = (self.end as $uty).wrapping_sub(self.start as $uty);
                        let offset = reduce(rng.next_u64(), span as u64) as $uty;
                        (self.start as $uty).wrapping_add(offset) as $ty
                    }
                }

                impl SampleRange<$ty> for RangeInclusive<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        let (lo, hi) = self.into_inner();
                        assert!(lo <= hi, "empty gen_range");
                        let span = (hi as $uty).wrapping_sub(lo as $uty) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $ty;
                        }
                        let offset = reduce(rng.next_u64(), span + 1) as $uty;
                        (lo as $uty).wrapping_add(offset) as $ty
                    }
                }
            )*
        };
    }

    sample_range_int!(
        u8 => u8,
        u16 => u16,
        u32 => u32,
        u64 => u64,
        usize => usize,
        i8 => u8,
        i16 => u16,
        i32 => u32,
        i64 => u64,
        isize => usize,
    );

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty gen_range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            // `start + unit * span` can round up to exactly `end` when the
            // bounds are close; keep the half-open contract.
            (self.start + unit * (self.end - self.start)).min(self.end.next_down())
        }
    }
}

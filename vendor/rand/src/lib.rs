//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `rand` 0.8 it actually uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, the [`Standard`] distribution for
//! `gen::<T>()`, uniform ranges for `gen_range`, and a deterministic
//! [`rngs::StdRng`] built on xoshiro256++ seeded via SplitMix64. Statistical
//! quality is more than sufficient for tests and Monte-Carlo estimation;
//! streams are deterministic per seed but differ from upstream `rand`'s
//! ChaCha-based `StdRng`. Switching back to the real crate is a one-line
//! `Cargo.toml` change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform `u32`/`u64`.
pub trait RngCore {
    /// Next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Generate a value of type `T` via the [`Standard`] distribution
    /// (`f64` is uniform in `[0, 1)`, integers are uniform over their full
    /// range, `bool` is a fair coin).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Generate a value uniformly distributed over `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (the standard
    /// recommendation of the xoshiro authors).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(18);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(3i64..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}

//! Property tests of the framing layer: `read_frame` over arbitrary byte
//! streams must never panic, never buffer beyond the head/body caps, and
//! always terminate in one of exactly three ways — a well-formed frame, a
//! typed `io::Error`, or a clean EOF.
//!
//! Deterministic in CI like `tests/properties.rs` at the workspace root:
//! the vendored proptest runner has a fixed seed; `PROPTEST_CASES` /
//! `PROPTEST_RNG_SEED` override case count and stream.

use netline::{read_frame, write_frame, Frame, MAX_BODY_LEN, MAX_HEAD_LEN};
use proptest::prelude::*;
use std::io::BufReader;

/// Drain a byte stream through `read_frame`, asserting the invariants on
/// every step; returns how many frames parsed.
fn drain(bytes: &[u8]) -> Result<usize, proptest::test_runner::TestCaseError> {
    let mut r = BufReader::new(bytes);
    let mut frames = 0usize;
    loop {
        // `read_frame` consumes at least one byte per iteration (or ends),
        // so this loop is bounded by the input length.
        match read_frame(&mut r) {
            Ok(Some(frame)) => {
                prop_assert!(frame.body.len() <= MAX_BODY_LEN);
                prop_assert!(frame.head.len() <= MAX_HEAD_LEN);
                prop_assert!(!frame.head.contains('\n'));
                frames += 1;
            }
            Ok(None) => return Ok(frames), // clean EOF at a frame boundary
            Err(e) => {
                // Typed error: corrupt length token, cap overflow, EOF
                // mid-body, or invalid UTF-8 in the head. Never a panic.
                let _ = e.kind();
                return Ok(frames);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Pure noise: any byte soup yields frames, a typed error, or EOF.
    #[test]
    fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        drain(&bytes)?;
    }

    /// Near-miss streams: drawn from the alphabet real frames use (digits,
    /// spaces, newlines, a letter), which hits the length-token parser and
    /// the body reader far more often than uniform noise does.
    #[test]
    fn almost_valid_frames_never_panic(
        bytes in proptest::collection::vec(
            proptest::sample::select(
                b" \n\r0123456789Qx".to_vec()
            ),
            0..256,
        )
    ) {
        drain(&bytes)?;
    }

    /// Valid frames embedded in a stream parse back exactly, and whatever
    /// trailing junk follows them still resolves without a panic.
    #[test]
    fn valid_prefix_then_junk_recovers_the_prefix(
        head_len in 0usize..40,
        body in proptest::collection::vec(any::<u8>(), 0..64),
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let head: String = "h".repeat(head_len);
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::new(head.clone(), body.clone())).unwrap();
        let mut r = BufReader::new(&wire[..]);
        let frame = read_frame(&mut r).unwrap().unwrap();
        prop_assert_eq!(&frame.head, &head);
        prop_assert_eq!(&frame.body, &body);

        wire.extend_from_slice(&junk);
        let mut r = BufReader::new(&wire[..]);
        let first = read_frame(&mut r).unwrap().unwrap();
        prop_assert_eq!(first.head, head);
        prop_assert_eq!(first.body, body);
        drain(&junk)?;
    }
}

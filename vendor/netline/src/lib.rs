//! A minimal framed line protocol over TCP, std-only.
//!
//! This is **not** a stand-in for a crates.io crate: it is the first-party
//! transport of `gdlog serve`, kept under `vendor/` with the other
//! network-free infrastructure because the build environment has no
//! registry access and the server needs nothing more than blocking sockets.
//!
//! ## Framing
//!
//! A frame is one ASCII header line followed by a raw body:
//!
//! ```text
//! <head tokens...> <body-len>\n
//! <body-len bytes>
//! ```
//!
//! The header line is UTF-8, terminated by `\n`, and its **last**
//! whitespace-separated token is the body length in bytes (so heads may
//! contain spaces). The body is arbitrary bytes, commonly UTF-8 JSON. A
//! zero-length body is just `... 0\n`. Both requests and responses use the
//! same framing, which keeps the protocol trivially inspectable with
//! `nc`/`socat` and makes responses byte-diffable against golden files.
//!
//! ## Server model
//!
//! [`Server`] is a blocking accept loop on its own thread with a
//! thread-per-connection handler — the right scale for a resident query
//! daemon whose per-query work (a chase + stable-model search) dwarfs any
//! connection overhead. [`ServerHandle::stop`] flips a flag and wakes the
//! accept loop with a loopback connect, so shutdown is prompt without
//! non-blocking sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Upper bound on a frame body (64 MiB) — a malformed or hostile length
/// token must not make the server allocate unboundedly.
pub const MAX_BODY_LEN: usize = 64 << 20;

/// One protocol frame: a header line (without the length token) plus a body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The header tokens, exactly as sent, with the trailing length token
    /// and newline stripped.
    pub head: String,
    /// The raw body bytes.
    pub body: Vec<u8>,
}

impl Frame {
    /// Build a frame.
    pub fn new(head: impl Into<String>, body: impl Into<Vec<u8>>) -> Self {
        Frame {
            head: head.into(),
            body: body.into(),
        }
    }

    /// The body as UTF-8 text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Write one frame. The head must not contain `\n`.
///
/// Header and body go out as a single `write_all` — a request/response
/// protocol that dribbles two small writes per frame trips over Nagle's
/// algorithm + delayed ACKs (tens of milliseconds per round trip, even on
/// loopback).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    debug_assert!(!frame.head.contains('\n'), "frame head must be one line");
    let mut wire = Vec::with_capacity(frame.head.len() + frame.body.len() + 16);
    if frame.head.is_empty() {
        let _ = writeln!(wire, "{}", frame.body.len());
    } else {
        let _ = writeln!(wire, "{} {}", frame.head, frame.body.len());
    }
    wire.extend_from_slice(&frame.body);
    w.write_all(&wire)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on clean EOF at a frame boundary;
/// EOF mid-frame is an error.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Frame>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let line = line.trim_end_matches(['\r', '\n']);
    let (head, len_token) = match line.rsplit_once(char::is_whitespace) {
        Some((head, len)) => (head.trim_end(), len),
        None => ("", line),
    };
    let len: usize = len_token.parse().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header must end with a body length, got {line:?}"),
        )
    })?;
    if len > MAX_BODY_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {len} bytes exceeds the {MAX_BODY_LEN}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(Frame {
        head: head.to_owned(),
        body,
    }))
}

/// Per-connection handler: receives each request frame in arrival order and
/// returns the response frame. Runs on the connection's thread; shared
/// across connections, hence `Sync`.
pub trait Handler: Send + Sync + 'static {
    /// Answer one request.
    fn handle(&self, request: Frame) -> Frame;

    /// Called when a connection closes (cleanly or not). Sessions with
    /// connection-scoped state clean up here.
    fn disconnected(&self, _conn_id: u64) {}

    /// Called when a connection opens; the id is echoed to
    /// [`Handler::handle_on`] and [`Handler::disconnected`].
    fn connected(&self, _conn_id: u64) {}

    /// Connection-aware variant of [`Handler::handle`]; the default ignores
    /// the connection id.
    fn handle_on(&self, _conn_id: u64, request: Frame) -> Frame {
        self.handle(request)
    }
}

/// A bound, not-yet-serving TCP server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral test port).
    pub fn bind(addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server { listener, addr })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Start serving on a background accept thread, one handler thread per
    /// connection. Returns the handle used to stop the server.
    pub fn spawn(self, handler: Arc<dyn Handler>) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let addr = self.addr;
        let listener = self.listener;
        let accept = std::thread::spawn(move || {
            let mut next_conn: u64 = 0;
            // Each entry keeps a second handle on the connection's socket so
            // shutdown can unblock a reader parked in `read_frame` — joining
            // alone would wait forever for clients that never disconnect.
            let mut conns: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let Ok(peer) = stream.try_clone() else {
                    continue;
                };
                let conn_id = next_conn;
                next_conn += 1;
                let handler = Arc::clone(&handler);
                conns.push((
                    std::thread::spawn(move || {
                        let _ = serve_connection(stream, conn_id, &*handler);
                    }),
                    peer,
                ));
                conns.retain(|(c, _)| !c.is_finished());
            }
            for (conn, peer) in conns {
                let _ = peer.shutdown(std::net::Shutdown::Both);
                let _ = conn.join();
            }
        });
        ServerHandle {
            addr,
            stop,
            accept: Some(accept),
        }
    }
}

fn serve_connection(stream: TcpStream, conn_id: u64, handler: &dyn Handler) -> io::Result<()> {
    // One frame in, one frame out: never wait for a coalescing timer.
    let _ = stream.set_nodelay(true);
    handler.connected(conn_id);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let result = loop {
        match read_frame(&mut reader) {
            Ok(Some(request)) => {
                let response = handler.handle_on(conn_id, request);
                if let Err(e) = write_frame(&mut writer, &response) {
                    break Err(e);
                }
            }
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        }
    };
    handler.disconnected(conn_id);
    result
}

/// A running server; dropping the handle stops it.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The serving address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop, shut down live connections and
    /// join every thread. A connection mid-request finishes computing its
    /// response (the write then fails); idle connections unblock
    /// immediately, so stopping is prompt even with clients still attached.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A blocking request/response client over one connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response over small frames: disable Nagle coalescing.
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Send one request frame and wait for its response frame.
    pub fn call(&mut self, head: &str, body: impl Into<Vec<u8>>) -> io::Result<Frame> {
        write_frame(&mut self.writer, &Frame::new(head, body))?;
        read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::new("QUERY 1 --top 4", b"body".to_vec())).unwrap();
        write_frame(&mut wire, &Frame::new("PING", Vec::new())).unwrap();
        write_frame(&mut wire, &Frame::new("", b"x".to_vec())).unwrap();
        assert!(wire.starts_with(b"QUERY 1 --top 4 4\nbody"));
        let mut r = io::BufReader::new(&wire[..]);
        let a = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(
            (a.head.as_str(), a.body_text().as_str()),
            ("QUERY 1 --top 4", "body")
        );
        let b = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((b.head.as_str(), b.body.len()), ("PING", 0));
        let c = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((c.head.as_str(), &c.body[..]), ("", &b"x"[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        let mut r = io::BufReader::new(&b"QUERY notanumber\nrest"[..]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Length beyond the cap is rejected before allocating.
        let huge = format!("X {}\n", MAX_BODY_LEN + 1);
        let mut r = io::BufReader::new(huge.as_bytes());
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // EOF mid-body is an error, not a silent truncation.
        let mut r = io::BufReader::new(&b"X 10\nshort"[..]);
        assert!(read_frame(&mut r).is_err());
    }

    struct Echo;
    impl Handler for Echo {
        fn handle(&self, request: Frame) -> Frame {
            Frame::new(format!("OK {}", request.head), request.body)
        }
    }

    #[test]
    fn server_round_trip_and_prompt_stop() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut handle = server.spawn(Arc::new(Echo));
        let addr = handle.local_addr();

        let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(addr).unwrap()).collect();
        for (i, client) in clients.iter_mut().enumerate() {
            let resp = client
                .call(&format!("HELLO {i}"), format!("body-{i}"))
                .unwrap();
            assert_eq!(resp.head, format!("OK HELLO {i}"));
            assert_eq!(resp.body_text(), format!("body-{i}"));
        }
        drop(clients);
        handle.stop();
        // Stopped server refuses (or resets) new connections; a second stop
        // is a no-op.
        handle.stop();
        assert!(
            Client::connect(addr)
                .and_then(|mut c| c.call("PING", Vec::new()))
                .is_err(),
            "stopped server must not answer"
        );
    }

    #[test]
    fn stop_is_prompt_with_clients_still_connected() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut handle = server.spawn(Arc::new(Echo));
        let mut client = Client::connect(handle.local_addr()).unwrap();
        client.call("HELLO", Vec::new()).unwrap();
        // The client never disconnects: stop shuts its socket down rather
        // than waiting for it.
        handle.stop();
        assert!(client.call("PING", Vec::new()).is_err());
    }

    struct ConnTracker(std::sync::Mutex<Vec<(u64, &'static str)>>);
    impl Handler for ConnTracker {
        fn handle(&self, request: Frame) -> Frame {
            Frame::new("OK", request.body)
        }
        fn connected(&self, id: u64) {
            self.0.lock().unwrap().push((id, "open"));
        }
        fn disconnected(&self, id: u64) {
            self.0.lock().unwrap().push((id, "close"));
        }
    }

    #[test]
    fn connection_lifecycle_hooks_fire() {
        let tracker = Arc::new(ConnTracker(std::sync::Mutex::new(Vec::new())));
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut handle = server.spawn(tracker.clone());
        {
            let mut c = Client::connect(handle.local_addr()).unwrap();
            c.call("X", Vec::new()).unwrap();
        }
        // The close hook fires on the connection thread after the client
        // drops; poll briefly rather than sleeping a fixed amount.
        for _ in 0..200 {
            if tracker.0.lock().unwrap().iter().any(|(_, e)| *e == "close") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let events = tracker.0.lock().unwrap().clone();
        assert!(events.contains(&(0, "open")), "{events:?}");
        assert!(events.contains(&(0, "close")), "{events:?}");
        handle.stop();
    }
}

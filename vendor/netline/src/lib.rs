//! A minimal framed line protocol over TCP, std-only.
//!
//! This is **not** a stand-in for a crates.io crate: it is the first-party
//! transport of `gdlog serve`, kept under `vendor/` with the other
//! network-free infrastructure because the build environment has no
//! registry access and the server needs nothing more than blocking sockets.
//!
//! ## Framing
//!
//! A frame is one ASCII header line followed by a raw body:
//!
//! ```text
//! <head tokens...> <body-len>\n
//! <body-len bytes>
//! ```
//!
//! The header line is UTF-8, terminated by `\n`, and its **last**
//! whitespace-separated token is the body length in bytes (so heads may
//! contain spaces). The body is arbitrary bytes, commonly UTF-8 JSON. A
//! zero-length body is just `... 0\n`. Both requests and responses use the
//! same framing, which keeps the protocol trivially inspectable with
//! `nc`/`socat` and makes responses byte-diffable against golden files.
//!
//! Both directions of the framing are bounded: a body length token beyond
//! [`MAX_BODY_LEN`] and a header line that never reaches a newline within
//! [`MAX_HEAD_LEN`] bytes are typed [`io::ErrorKind::InvalidData`] errors,
//! never unbounded allocations.
//!
//! ## Server model
//!
//! [`Server`] is a blocking accept loop on its own thread with a
//! thread-per-connection handler — the right scale for a resident query
//! daemon whose per-query work (a chase + stable-model search) dwarfs any
//! connection overhead. [`ServerHandle::stop`] flips a flag and wakes the
//! accept loop with a loopback connect, so shutdown is prompt without
//! non-blocking sockets; [`ServerHandle::stop_graceful`] first drains
//! in-flight connections for a bounded grace period.
//!
//! ## Robustness
//!
//! A handler that panics never takes the process down: the panic is caught
//! on the connection thread, the client receives the handler's
//! [`Handler::panic_response`] frame, and only that connection is torn
//! down. [`ServerOptions::io_timeout`] arms socket read/write timeouts so
//! a stalled or hostile peer cannot pin a connection thread forever, and
//! [`ConnProbe`] (handed to [`Handler::attached`]) lets a handler notice
//! mid-request that its peer already disconnected — e.g. while the request
//! is parked in an admission queue. The [`chaos`] module injects
//! deterministic transport faults for tests and CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;

use chaos::{ChaosAction, ChaosSpec, ConnChaos};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on a frame body (64 MiB) — a malformed or hostile length
/// token must not make the server allocate unboundedly.
pub const MAX_BODY_LEN: usize = 64 << 20;

/// Upper bound on a frame header line (64 KiB) including its newline — a
/// peer that streams bytes without ever sending `\n` must not make
/// `read_frame` buffer unboundedly.
pub const MAX_HEAD_LEN: usize = 64 << 10;

/// One protocol frame: a header line (without the length token) plus a body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The header tokens, exactly as sent, with the trailing length token
    /// and newline stripped.
    pub head: String,
    /// The raw body bytes.
    pub body: Vec<u8>,
}

impl Frame {
    /// Build a frame.
    pub fn new(head: impl Into<String>, body: impl Into<Vec<u8>>) -> Self {
        Frame {
            head: head.into(),
            body: body.into(),
        }
    }

    /// The body as UTF-8 text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Serialize one frame to its wire bytes.
fn encode_frame(frame: &Frame) -> Vec<u8> {
    debug_assert!(!frame.head.contains('\n'), "frame head must be one line");
    let mut wire = Vec::with_capacity(frame.head.len() + frame.body.len() + 16);
    if frame.head.is_empty() {
        let _ = writeln!(wire, "{}", frame.body.len());
    } else {
        let _ = writeln!(wire, "{} {}", frame.head, frame.body.len());
    }
    wire.extend_from_slice(&frame.body);
    wire
}

/// Write one frame. The head must not contain `\n`.
///
/// Header and body go out as a single `write_all` — a request/response
/// protocol that dribbles two small writes per frame trips over Nagle's
/// algorithm + delayed ACKs (tens of milliseconds per round trip, even on
/// loopback).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on clean EOF at a frame boundary;
/// EOF mid-frame is an error.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Frame>> {
    let mut line = String::new();
    // Cap the header read: a bare `read_line` would buffer a hostile
    // newline-less stream without bound. Reading one byte past the cap
    // distinguishes "exactly at the cap" from "truncated by it".
    if r.by_ref()
        .take(MAX_HEAD_LEN as u64 + 1)
        .read_line(&mut line)?
        == 0
    {
        return Ok(None);
    }
    if !line.ends_with('\n') && line.len() > MAX_HEAD_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header exceeds the {MAX_HEAD_LEN}-byte cap without a newline"),
        ));
    }
    let line = line.trim_end_matches(['\r', '\n']);
    let (head, len_token) = match line.rsplit_once(char::is_whitespace) {
        Some((head, len)) => (head.trim_end(), len),
        None => ("", line),
    };
    let len: usize = len_token.parse().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header must end with a body length, got {line:?}"),
        )
    })?;
    if len > MAX_BODY_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {len} bytes exceeds the {MAX_BODY_LEN}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(Frame {
        head: head.to_owned(),
        body,
    }))
}

/// A liveness probe on one connection's socket, handed to
/// [`Handler::attached`] when the connection opens.
///
/// `is_closed` must only be polled from code running on (or on behalf of)
/// the connection's own handler thread — i.e. while that thread is inside
/// `handle_on`, not parked in a read. It briefly toggles the socket
/// non-blocking to peek, and a reader blocked in `read_frame` on the same
/// socket would observe the toggle.
#[derive(Debug)]
pub struct ConnProbe {
    stream: TcpStream,
}

impl ConnProbe {
    /// Best-effort: has the peer disconnected? A `true` is definite (EOF or
    /// a hard socket error); `false` means the connection still looked open
    /// at poll time.
    pub fn is_closed(&self) -> bool {
        if self.stream.set_nonblocking(true).is_err() {
            return true;
        }
        let mut buf = [0u8; 1];
        let closed = match self.stream.peek(&mut buf) {
            Ok(0) => true,  // orderly shutdown
            Ok(_) => false, // pipelined request bytes waiting
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
            Err(_) => true, // reset / torn down
        };
        let _ = self.stream.set_nonblocking(false);
        closed
    }
}

/// Per-connection handler: receives each request frame in arrival order and
/// returns the response frame. Runs on the connection's thread; shared
/// across connections, hence `Sync`.
pub trait Handler: Send + Sync + 'static {
    /// Answer one request.
    fn handle(&self, request: Frame) -> Frame;

    /// Called when a connection closes (cleanly or not). Sessions with
    /// connection-scoped state clean up here.
    fn disconnected(&self, _conn_id: u64) {}

    /// Called when a connection opens; the id is echoed to
    /// [`Handler::handle_on`] and [`Handler::disconnected`].
    fn connected(&self, _conn_id: u64) {}

    /// Called once per connection, before [`Handler::connected`], with a
    /// liveness probe on the connection's socket. Handlers that park
    /// requests (admission queues) keep it to notice abandoned peers.
    fn attached(&self, _conn_id: u64, _probe: ConnProbe) {}

    /// The frame written to the client when `handle`/`handle_on` panics.
    /// The connection is torn down right after it is sent; the server
    /// itself keeps running.
    fn panic_response(&self, _conn_id: u64) -> Frame {
        Frame::new("ERR internal-error", b"request handler panicked".to_vec())
    }

    /// Connection-aware variant of [`Handler::handle`]; the default ignores
    /// the connection id.
    fn handle_on(&self, _conn_id: u64, request: Frame) -> Frame {
        self.handle(request)
    }
}

/// Serving knobs beyond the bare accept loop.
#[derive(Debug, Default)]
pub struct ServerOptions {
    /// Socket read/write timeout applied to every accepted connection.
    /// With a timeout set, a connection that is idle or stalled (including
    /// mid-frame) longer than this is torn down — slow-loris peers cannot
    /// pin a thread. `None` (the default) keeps connections fully blocking,
    /// which is right for long-lived interactive sessions.
    pub io_timeout: Option<Duration>,
    /// Deterministic transport-fault injection; see [`chaos`].
    pub chaos: Option<ChaosSpec>,
}

impl ServerOptions {
    /// Options with the chaos spec (if any) taken from the `GDLOG_CHAOS`
    /// environment variable. A set-but-malformed spec is an error: a chaos
    /// run must fail loudly rather than silently run fault-free.
    pub fn from_env() -> io::Result<ServerOptions> {
        let chaos =
            ChaosSpec::from_env().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        Ok(ServerOptions {
            io_timeout: None,
            chaos,
        })
    }
}

/// A bound, not-yet-serving TCP server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral test port).
    pub fn bind(addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server { listener, addr })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Start serving with default [`ServerOptions`]; see
    /// [`Server::spawn_with`].
    pub fn spawn(self, handler: Arc<dyn Handler>) -> ServerHandle {
        self.spawn_with(handler, ServerOptions::default())
    }

    /// Start serving on a background accept thread, one handler thread per
    /// connection. Returns the handle used to stop the server.
    pub fn spawn_with(self, handler: Arc<dyn Handler>, options: ServerOptions) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let grace = Arc::new(Mutex::new(Duration::ZERO));
        let accept_stop = Arc::clone(&stop);
        let accept_grace = Arc::clone(&grace);
        let addr = self.addr;
        let listener = self.listener;
        let accept = std::thread::spawn(move || {
            let mut next_conn: u64 = 0;
            // Each entry keeps a second handle on the connection's socket so
            // shutdown can unblock a reader parked in `read_frame` — joining
            // alone would wait forever for clients that never disconnect.
            let mut conns: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let Ok(peer) = stream.try_clone() else {
                    continue;
                };
                if let Some(t) = options.io_timeout {
                    let _ = stream.set_read_timeout(Some(t));
                    let _ = stream.set_write_timeout(Some(t));
                }
                let conn_id = next_conn;
                next_conn += 1;
                let conn_chaos = options.chaos.as_ref().and_then(|c| c.for_conn(conn_id));
                let handler = Arc::clone(&handler);
                conns.push((
                    std::thread::spawn(move || {
                        let _ = serve_connection(stream, conn_id, &*handler, conn_chaos);
                    }),
                    peer,
                ));
                conns.retain(|(c, _)| !c.is_finished());
            }
            // Drain: give in-flight connections a grace period to finish
            // (compute + write their current response and see the client
            // hang up) before cutting their sockets.
            let grace = *accept_grace.lock().unwrap_or_else(|e| e.into_inner());
            let deadline = Instant::now() + grace;
            while conns.iter().any(|(c, _)| !c.is_finished()) && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            for (conn, peer) in conns {
                let _ = peer.shutdown(std::net::Shutdown::Both);
                let _ = conn.join();
            }
        });
        ServerHandle {
            addr,
            stop,
            grace,
            accept: Some(accept),
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    conn_id: u64,
    handler: &dyn Handler,
    mut chaos: Option<ConnChaos>,
) -> io::Result<()> {
    // One frame in, one frame out: never wait for a coalescing timer.
    let _ = stream.set_nodelay(true);
    if let Ok(probe) = stream.try_clone() {
        handler.attached(conn_id, ConnProbe { stream: probe });
    }
    handler.connected(conn_id);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let result = loop {
        match read_frame(&mut reader) {
            Ok(Some(request)) => {
                // Panic isolation: a bug in one request must cost exactly
                // one connection, not the process. The client still gets a
                // typed response before the teardown, so it can tell "the
                // server rejected this" from "the network died".
                let response = match std::panic::catch_unwind(AssertUnwindSafe(|| {
                    handler.handle_on(conn_id, request)
                })) {
                    Ok(response) => response,
                    Err(_) => {
                        let _ = write_frame(&mut writer, &handler.panic_response(conn_id));
                        break Err(io::Error::other("request handler panicked"));
                    }
                };
                if let Err(e) = write_response(&mut writer, &response, chaos.as_mut()) {
                    break Err(e);
                }
            }
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        }
    };
    // Shut the socket down explicitly: the accept loop keeps a `try_clone`
    // of it (to unblock parked readers at stop), so merely dropping our
    // handles would leave the peer's FIN unsent and a client blocked in a
    // read would never learn the connection died.
    let _ = writer.shutdown(std::net::Shutdown::Both);
    handler.disconnected(conn_id);
    result
}

/// Write one response, routed through the connection's chaos stream when
/// one is armed. Corrupting faults return an error so the connection loop
/// tears the session down — a stream that lost framing is unrecoverable.
fn write_response(
    writer: &mut TcpStream,
    response: &Frame,
    chaos: Option<&mut ConnChaos>,
) -> io::Result<()> {
    let Some(chaos) = chaos else {
        return write_frame(writer, response);
    };
    if let Some(delay) = chaos.pre_delay() {
        std::thread::sleep(delay);
    }
    let wire = encode_frame(response);
    match chaos.next_action() {
        ChaosAction::Deliver => {
            writer.write_all(&wire)?;
            writer.flush()
        }
        ChaosAction::Stall(pause) => {
            let mid = wire.len() / 2;
            writer.write_all(&wire[..mid])?;
            writer.flush()?;
            std::thread::sleep(pause);
            writer.write_all(&wire[mid..])?;
            writer.flush()
        }
        ChaosAction::Drop => Err(io::Error::other("chaos: response dropped")),
        ChaosAction::Truncate => {
            let _ = writer.write_all(&wire[..wire.len() / 2]);
            let _ = writer.flush();
            Err(io::Error::other("chaos: response truncated"))
        }
        ChaosAction::Garbage(junk) => {
            let _ = writer.write_all(&junk);
            let _ = writer.flush();
            Err(io::Error::other("chaos: garbage written in place of response"))
        }
    }
}

/// A running server; dropping the handle stops it.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    grace: Arc<Mutex<Duration>>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The serving address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop, shut down live connections and
    /// join every thread. A connection mid-request finishes computing its
    /// response (the write then fails); idle connections unblock
    /// immediately, so stopping is prompt even with clients still attached.
    pub fn stop(&mut self) {
        self.stop_graceful(Duration::ZERO);
    }

    /// Like [`ServerHandle::stop`], but first drain: stop accepting new
    /// connections immediately, then give live connections up to `grace`
    /// to finish their in-flight work (and observe their client hang up)
    /// before their sockets are cut.
    pub fn stop_graceful(&mut self, grace: Duration) {
        *self.grace.lock().unwrap_or_else(|e| e.into_inner()) = grace;
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A blocking request/response client over one connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response over small frames: disable Nagle coalescing.
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Arm (or disarm, with `None`) a socket read/write timeout, so a call
    /// against a stalled or chaotic server fails instead of blocking
    /// forever.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)
    }

    /// Send one request frame and wait for its response frame.
    pub fn call(&mut self, head: &str, body: impl Into<Vec<u8>>) -> io::Result<Frame> {
        write_frame(&mut self.writer, &Frame::new(head, body))?;
        read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::new("QUERY 1 --top 4", b"body".to_vec())).unwrap();
        write_frame(&mut wire, &Frame::new("PING", Vec::new())).unwrap();
        write_frame(&mut wire, &Frame::new("", b"x".to_vec())).unwrap();
        assert!(wire.starts_with(b"QUERY 1 --top 4 4\nbody"));
        let mut r = io::BufReader::new(&wire[..]);
        let a = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(
            (a.head.as_str(), a.body_text().as_str()),
            ("QUERY 1 --top 4", "body")
        );
        let b = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((b.head.as_str(), b.body.len()), ("PING", 0));
        let c = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((c.head.as_str(), &c.body[..]), ("", &b"x"[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        let mut r = io::BufReader::new(&b"QUERY notanumber\nrest"[..]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Length beyond the cap is rejected before allocating.
        let huge = format!("X {}\n", MAX_BODY_LEN + 1);
        let mut r = io::BufReader::new(huge.as_bytes());
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // EOF mid-body is an error, not a silent truncation.
        let mut r = io::BufReader::new(&b"X 10\nshort"[..]);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn header_reads_are_capped() {
        // A peer that streams bytes and never sends a newline must get a
        // typed error at the cap, not an unbounded buffer. The stream here
        // is longer than the cap to prove reading stops at it.
        let endless = vec![b'a'; MAX_HEAD_LEN + 4096];
        let mut r = io::BufReader::new(&endless[..]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("cap"), "{err}");

        // A long-but-legal head still round-trips.
        let head = "Q".repeat(MAX_HEAD_LEN - 64);
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::new(head.clone(), b"b".to_vec())).unwrap();
        let frame = read_frame(&mut io::BufReader::new(&wire[..]))
            .unwrap()
            .unwrap();
        assert_eq!((frame.head, frame.body), (head, b"b".to_vec()));
    }

    struct Echo;
    impl Handler for Echo {
        fn handle(&self, request: Frame) -> Frame {
            Frame::new(format!("OK {}", request.head), request.body)
        }
    }

    #[test]
    fn server_round_trip_and_prompt_stop() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut handle = server.spawn(Arc::new(Echo));
        let addr = handle.local_addr();

        let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(addr).unwrap()).collect();
        for (i, client) in clients.iter_mut().enumerate() {
            let resp = client
                .call(&format!("HELLO {i}"), format!("body-{i}"))
                .unwrap();
            assert_eq!(resp.head, format!("OK HELLO {i}"));
            assert_eq!(resp.body_text(), format!("body-{i}"));
        }
        drop(clients);
        handle.stop();
        // Stopped server refuses (or resets) new connections; a second stop
        // is a no-op.
        handle.stop();
        assert!(
            Client::connect(addr)
                .and_then(|mut c| c.call("PING", Vec::new()))
                .is_err(),
            "stopped server must not answer"
        );
    }

    #[test]
    fn stop_is_prompt_with_clients_still_connected() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut handle = server.spawn(Arc::new(Echo));
        let mut client = Client::connect(handle.local_addr()).unwrap();
        client.call("HELLO", Vec::new()).unwrap();
        // The client never disconnects: stop shuts its socket down rather
        // than waiting for it.
        handle.stop();
        assert!(client.call("PING", Vec::new()).is_err());
    }

    struct ConnTracker(std::sync::Mutex<Vec<(u64, &'static str)>>);
    impl Handler for ConnTracker {
        fn handle(&self, request: Frame) -> Frame {
            Frame::new("OK", request.body)
        }
        fn connected(&self, id: u64) {
            self.0.lock().unwrap().push((id, "open"));
        }
        fn disconnected(&self, id: u64) {
            self.0.lock().unwrap().push((id, "close"));
        }
    }

    fn poll_until(mut done: impl FnMut() -> bool) -> bool {
        for _ in 0..400 {
            if done() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn connection_lifecycle_hooks_fire() {
        let tracker = Arc::new(ConnTracker(std::sync::Mutex::new(Vec::new())));
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut handle = server.spawn(tracker.clone());
        {
            let mut c = Client::connect(handle.local_addr()).unwrap();
            c.call("X", Vec::new()).unwrap();
        }
        // The close hook fires on the connection thread after the client
        // drops; poll briefly rather than sleeping a fixed amount.
        assert!(poll_until(|| {
            tracker.0.lock().unwrap().iter().any(|(_, e)| *e == "close")
        }));
        let events = tracker.0.lock().unwrap().clone();
        assert!(events.contains(&(0, "open")), "{events:?}");
        assert!(events.contains(&(0, "close")), "{events:?}");
        handle.stop();
    }

    struct Boomer;
    impl Handler for Boomer {
        fn handle(&self, request: Frame) -> Frame {
            if request.head == "BOOM" {
                panic!("injected handler bug");
            }
            Frame::new("OK", request.body)
        }
    }

    #[test]
    fn panicking_handler_costs_one_connection_not_the_server() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut handle = server.spawn(Arc::new(Boomer));
        let addr = handle.local_addr();

        let mut victim = Client::connect(addr).unwrap();
        victim.call("PING", Vec::new()).unwrap();
        let resp = victim.call("BOOM", Vec::new()).unwrap();
        assert_eq!(resp.head, "ERR internal-error");
        // The panicking connection is torn down...
        assert!(victim.call("PING", Vec::new()).is_err());
        // ...but the server keeps serving fresh connections.
        let mut healthy = Client::connect(addr).unwrap();
        assert_eq!(healthy.call("PING", b"p".to_vec()).unwrap().head, "OK");
        handle.stop();
    }

    struct ProbeKeeper(std::sync::Mutex<Vec<ConnProbe>>);
    impl Handler for ProbeKeeper {
        fn handle(&self, request: Frame) -> Frame {
            Frame::new("OK", request.body)
        }
        fn attached(&self, _id: u64, probe: ConnProbe) {
            self.0.lock().unwrap().push(probe);
        }
    }

    #[test]
    fn probe_notices_a_disconnected_peer() {
        let keeper = Arc::new(ProbeKeeper(std::sync::Mutex::new(Vec::new())));
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut handle = server.spawn(keeper.clone());
        let client = Client::connect(handle.local_addr()).unwrap();
        assert!(poll_until(|| !keeper.0.lock().unwrap().is_empty()));
        // Peer attached and idle: open. (Safe to poll from the test thread
        // here only because the connection is idle — no reader is blocked.)
        assert!(!keeper.0.lock().unwrap()[0].is_closed());
        drop(client);
        assert!(poll_until(|| keeper.0.lock().unwrap()[0].is_closed()));
        handle.stop();
    }

    #[test]
    fn io_timeout_tears_down_stalled_connections() {
        let tracker = Arc::new(ConnTracker(std::sync::Mutex::new(Vec::new())));
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut handle = server.spawn_with(
            tracker.clone(),
            ServerOptions {
                io_timeout: Some(Duration::from_millis(40)),
                chaos: None,
            },
        );
        // A slow-loris peer: half a header, then silence.
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream.write_all(b"STALLED").unwrap();
        assert!(
            poll_until(|| tracker.0.lock().unwrap().iter().any(|(_, e)| *e == "close")),
            "stalled connection must be torn down by the io timeout"
        );
        handle.stop();
    }

    struct Slow;
    impl Handler for Slow {
        fn handle(&self, request: Frame) -> Frame {
            std::thread::sleep(Duration::from_millis(80));
            Frame::new("OK", request.body)
        }
    }

    #[test]
    fn graceful_stop_lets_in_flight_responses_finish() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut handle = server.spawn(Arc::new(Slow));
        let addr = handle.local_addr();
        let client = std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.call("SLOW", b"payload".to_vec())
        });
        // Let the request reach the handler, then drain-stop around it.
        std::thread::sleep(Duration::from_millis(20));
        handle.stop_graceful(Duration::from_secs(5));
        let resp = client.join().unwrap().expect("in-flight response survives");
        assert_eq!(
            (resp.head.as_str(), &resp.body[..]),
            ("OK", &b"payload"[..])
        );
    }

    #[test]
    fn byte_preserving_chaos_keeps_responses_identical() {
        let spec = ChaosSpec::parse("delay=1,stall=1,seed=9").unwrap();
        assert!(spec.is_byte_preserving());
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut handle = server.spawn_with(
            Arc::new(Echo),
            ServerOptions {
                io_timeout: None,
                chaos: Some(spec),
            },
        );
        let mut client = Client::connect(handle.local_addr()).unwrap();
        for i in 0..5 {
            let resp = client.call(&format!("R{i}"), format!("b{i}")).unwrap();
            assert_eq!(resp.head, format!("OK R{i}"));
            assert_eq!(resp.body_text(), format!("b{i}"));
        }
        handle.stop();
    }

    #[test]
    fn corrupting_chaos_never_crashes_the_server() {
        // Every even connection rolls drop/truncate/garbage dice; odd
        // connections stay healthy. The server must survive all of it.
        let spec = ChaosSpec::parse("every=2,seed=3,drop=2,truncate=3,garbage=3").unwrap();
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut handle = server.spawn_with(
            Arc::new(Echo),
            ServerOptions {
                io_timeout: None,
                chaos: Some(spec),
            },
        );
        let addr = handle.local_addr();
        let mut faults = 0;
        for round in 0..8 {
            // conn ids alternate even/odd as we reconnect each round.
            let mut c = Client::connect(addr).unwrap();
            c.set_io_timeout(Some(Duration::from_secs(2))).unwrap();
            match c.call("R", format!("round-{round}")) {
                Ok(resp) => assert!(
                    resp.head == "OK R" || faults > 0 || resp.head.is_empty(),
                    "unexpected response {resp:?}"
                ),
                Err(_) => faults += 1,
            }
        }
        assert!(
            faults > 0,
            "1-in-2 drop dice over 4 chaotic rounds should fire"
        );
        // After all that abuse a fresh healthy connection still answers.
        let mut healthy = Client::connect(addr).unwrap();
        let mut ok = false;
        for _ in 0..4 {
            if let Ok(resp) = healthy.call("FINAL", b"x".to_vec()) {
                assert_eq!(resp.head, "OK FINAL");
                ok = true;
                break;
            }
            healthy = Client::connect(addr).unwrap();
        }
        assert!(ok, "server must still serve after corrupting chaos");
        handle.stop();
    }
}

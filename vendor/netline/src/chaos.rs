//! Deterministic fault injection for the netline transport.
//!
//! The chaos layer perturbs the **response path** of a serving connection so
//! the rest of the stack can be proven to survive transport-level failure:
//! delayed responses, responses cut mid-frame, garbage on the wire, stalled
//! writes, connections dropped without a reply. It is entirely first-party
//! (no process-external tooling) and entirely deterministic — every decision
//! comes from an xorshift stream seeded by `seed ^ conn_id`, so a failing
//! run replays exactly from its spec string.
//!
//! Two fault families with very different guarantees:
//!
//! * **Byte-preserving** (`delay`, `stall`): the response bytes the client
//!   eventually observes are identical to a fault-free run. These are safe
//!   to enable under golden-output tests — they attack timing, not content.
//! * **Corrupting** (`drop`, `truncate`, `garbage`): the connection is
//!   closed after the fault, because a request/response stream that has
//!   lost framing can never be trusted again. Clients see a transport
//!   error and must retry on a fresh connection.
//!
//! A spec is a comma-separated `key=value` string, normally supplied via
//! the `GDLOG_CHAOS` environment variable:
//!
//! ```text
//! GDLOG_CHAOS="every=2,seed=42,delay=5,stall=3,drop=8,truncate=16,garbage=16"
//! ```
//!
//! `every=K` restricts chaos to connections with `conn_id % K == 0`, so a
//! test can run corrupted and healthy sessions against one server and
//! assert the healthy ones stay byte-identical. `delay`/`stall` are
//! milliseconds applied to every chaotic response; `drop`/`truncate`/
//! `garbage` are 1-in-N dice rolled per response (0 disables a fault).

use std::time::Duration;

/// Environment variable read by [`ChaosSpec::from_env`].
pub const CHAOS_ENV: &str = "GDLOG_CHAOS";

/// A parsed fault-injection spec. All-zero dice with `every = 1` means
/// "chaotic connections exist but no fault ever fires", which is still
/// useful for exercising the chaos code path itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Seed mixed with each connection id to derive that connection's
    /// deterministic fault stream.
    pub seed: u64,
    /// Only connections with `conn_id % every == 0` are chaotic. `1`
    /// (the default) makes every connection chaotic; `0` is rejected.
    pub every: u64,
    /// Fixed delay in milliseconds before each chaotic response
    /// (byte-preserving).
    pub delay_ms: u64,
    /// Pause in milliseconds in the middle of each chaotic response write,
    /// splitting the frame across two TCP pushes (byte-preserving).
    pub stall_ms: u64,
    /// 1-in-N chance per response to close the connection without
    /// responding at all. `0` disables.
    pub drop: u64,
    /// 1-in-N chance per response to write only the first half of the
    /// frame, then close. `0` disables.
    pub truncate: u64,
    /// 1-in-N chance per response to write 16 bytes of deterministic
    /// garbage instead of the frame, then close. `0` disables.
    pub garbage: u64,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            seed: 0,
            every: 1,
            delay_ms: 0,
            stall_ms: 0,
            drop: 0,
            truncate: 0,
            garbage: 0,
        }
    }
}

impl ChaosSpec {
    /// Parse a comma-separated `key=value` spec. Unknown keys, malformed
    /// numbers, `every=0` and the empty string are errors — a chaos run
    /// that silently ignored a typo would prove nothing.
    pub fn parse(spec: &str) -> Result<ChaosSpec, String> {
        if spec.trim().is_empty() {
            return Err("empty chaos spec (unset the variable to disable chaos)".to_owned());
        }
        let mut parsed = ChaosSpec::default();
        for part in spec.split(',') {
            let part = part.trim();
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec entry {part:?} is not key=value"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("chaos spec entry {part:?} has a non-numeric value"))?;
            match key.trim() {
                "seed" => parsed.seed = value,
                "every" => parsed.every = value,
                "delay" => parsed.delay_ms = value,
                "stall" => parsed.stall_ms = value,
                "drop" => parsed.drop = value,
                "truncate" => parsed.truncate = value,
                "garbage" => parsed.garbage = value,
                other => return Err(format!("unknown chaos spec key {other:?}")),
            }
        }
        if parsed.every == 0 {
            return Err("chaos spec every=0 would select no connections".to_owned());
        }
        Ok(parsed)
    }

    /// Read the spec from the [`CHAOS_ENV`] environment variable.
    /// `Ok(None)` when unset; a set-but-malformed value is an error so a
    /// chaos CI job cannot silently run fault-free.
    pub fn from_env() -> Result<Option<ChaosSpec>, String> {
        match std::env::var(CHAOS_ENV) {
            Ok(spec) => ChaosSpec::parse(&spec).map(Some),
            Err(_) => Ok(None),
        }
    }

    /// True when every enabled fault preserves the bytes the client
    /// observes (only `delay`/`stall`) — the spec is safe under golden
    /// output comparison.
    pub fn is_byte_preserving(&self) -> bool {
        self.drop == 0 && self.truncate == 0 && self.garbage == 0
    }

    /// The per-connection fault stream, or `None` when `conn_id` is not
    /// selected by `every`.
    pub(crate) fn for_conn(&self, conn_id: u64) -> Option<ConnChaos> {
        if conn_id % self.every != 0 {
            return None;
        }
        Some(ConnChaos {
            spec: self.clone(),
            rng: Xorshift::new(self.seed ^ conn_id),
        })
    }
}

/// What to do with one response on a chaotic connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ChaosAction {
    /// Write the frame normally.
    Deliver,
    /// Write the first half of the frame, pause, write the rest
    /// (byte-preserving).
    Stall(Duration),
    /// Close the connection without responding.
    Drop,
    /// Write the first half of the frame, then close.
    Truncate,
    /// Write garbage bytes instead of the frame, then close.
    Garbage([u8; 16]),
}

/// The deterministic fault stream of one chaotic connection.
#[derive(Debug)]
pub(crate) struct ConnChaos {
    spec: ChaosSpec,
    rng: Xorshift,
}

impl ConnChaos {
    /// Delay to apply before the next response, if any.
    pub(crate) fn pre_delay(&self) -> Option<Duration> {
        (self.spec.delay_ms > 0).then(|| Duration::from_millis(self.spec.delay_ms))
    }

    /// Decide the fate of the next response. Corrupting faults take
    /// precedence over the byte-preserving stall because they end the
    /// connection; the roll order is fixed so runs replay exactly.
    pub(crate) fn next_action(&mut self) -> ChaosAction {
        if self.roll(self.spec.drop) {
            ChaosAction::Drop
        } else if self.roll(self.spec.truncate) {
            ChaosAction::Truncate
        } else if self.roll(self.spec.garbage) {
            let mut junk = [0u8; 16];
            for b in &mut junk {
                *b = (self.rng.next() & 0xff) as u8;
            }
            ChaosAction::Garbage(junk)
        } else if self.spec.stall_ms > 0 {
            ChaosAction::Stall(Duration::from_millis(self.spec.stall_ms))
        } else {
            ChaosAction::Deliver
        }
    }

    /// A 1-in-`n` roll; `n == 0` disables the fault. The rng advances on
    /// every enabled roll, so each fault family sees an independent-looking
    /// stream while staying fully determined by `(seed, conn_id)`.
    fn roll(&mut self, n: u64) -> bool {
        n != 0 && self.rng.next() % n == 0
    }
}

/// xorshift64 — tiny, seedable, good enough for fault dice. Not used for
/// anything statistical.
#[derive(Debug)]
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Xorshift {
        // xorshift's one fixpoint is zero; displace with an arbitrary odd
        // constant (the splitmix64 increment) so seed 0 still has a stream.
        Xorshift(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_reject_garbage() {
        let spec =
            ChaosSpec::parse("every=2, seed=42, delay=5, stall=3, drop=8, truncate=16, garbage=9")
                .unwrap();
        assert_eq!(
            spec,
            ChaosSpec {
                seed: 42,
                every: 2,
                delay_ms: 5,
                stall_ms: 3,
                drop: 8,
                truncate: 16,
                garbage: 9,
            }
        );
        assert!(!spec.is_byte_preserving());
        assert!(ChaosSpec::parse("delay=5,stall=3")
            .unwrap()
            .is_byte_preserving());

        for bad in ["", "delay", "delay=x", "bogus=1", "every=0"] {
            assert!(ChaosSpec::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn fault_streams_are_deterministic_and_gated_by_every() {
        let spec = ChaosSpec::parse("every=2,seed=7,drop=3,garbage=3,stall=1").unwrap();
        assert!(spec.for_conn(1).is_none(), "odd conn ids stay healthy");
        let actions = |mut chaos: ConnChaos| -> Vec<ChaosAction> {
            (0..32).map(|_| chaos.next_action()).collect()
        };
        let a = actions(spec.for_conn(4).unwrap());
        let b = actions(spec.for_conn(4).unwrap());
        assert_eq!(a, b, "same (seed, conn_id) must replay the same faults");
        let c = actions(spec.for_conn(6).unwrap());
        assert_ne!(a, c, "different connections draw different streams");
        assert!(
            a.iter().any(|x| matches!(x, ChaosAction::Drop))
                && a.iter().any(|x| matches!(x, ChaosAction::Stall(_))),
            "with 1-in-3 dice over 32 responses both families should fire: {a:?}"
        );
    }
}

//! Offline stand-in for the `rayon` crate (scoped thread-pool subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `rayon`'s API it actually uses: a [`ThreadPool`]
//! built via [`ThreadPoolBuilder`], [`ThreadPool::scope`] with
//! [`Scope::spawn`] for dynamic task trees, and [`ThreadPool::join`] as the
//! two-way splitter. Scheduling is work-stealing in the classic sense — every
//! worker owns a deque, pushes and pops its own tasks LIFO for locality, and
//! steals FIFO from the other workers when idle — but built purely on
//! `std::sync` primitives (a `Mutex<VecDeque>` per worker) instead of
//! upstream's lock-free deques, and worker threads live for one `scope` call
//! instead of living in a global registry. Throughput is more than sufficient
//! for the chase workloads this workspace parallelizes, where each task
//! performs a saturation step that dwarfs the queue overhead.
//!
//! Deliberate behavioral differences from upstream `rayon` (see
//! `vendor/README.md`):
//!
//! * No global pool: `scope`/`join` are methods on an explicit [`ThreadPool`].
//! * Worker threads are spawned per `scope` call (via [`std::thread::scope`])
//!   and joined before it returns, so a pool is just a thread-count.
//! * No `par_iter`; fan-out goes through `scope`/`spawn` or `join`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A task queued inside a [`ThreadPool::scope`] call. It receives the scope
/// handle of the worker that executes it, so tasks can spawn further tasks.
type Task<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// Error building a [`ThreadPool`] (kept for API compatibility; the only
/// failure the stand-in can report is a zero-sized pool after defaulting).
pub struct ThreadPoolBuildError {
    message: String,
}

impl fmt::Debug for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ThreadPoolBuildError({})", self.message)
    }
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds a [`ThreadPool`] with a configured number of threads.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default configuration (one thread per available
    /// CPU).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads. `0` (the default) means one per
    /// available CPU.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A pool of `N` workers. The stand-in carries only the thread count; the
/// worker threads themselves are scoped to each [`ThreadPool::scope`] call.
pub struct ThreadPool {
    threads: usize,
}

/// Shared state of one `scope` call.
struct State<'scope> {
    /// One deque per worker (index 0 is the thread that called `scope`).
    /// Owners push/pop the back (LIFO); thieves steal from the front (FIFO).
    queues: Vec<Mutex<VecDeque<Task<'scope>>>>,
    /// Tasks spawned and not yet finished.
    pending: AtomicUsize,
    /// The scope is shutting down: workers exit their loops.
    done: AtomicBool,
    /// A task panicked somewhere; stop waiting and unwind.
    panicked: AtomicBool,
    /// Sleep/wake for idle workers.
    idle: Mutex<()>,
    cond: Condvar,
}

impl<'scope> State<'scope> {
    fn new(workers: usize) -> Self {
        State {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            idle: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    fn lock_queue(&self, index: usize) -> std::sync::MutexGuard<'_, VecDeque<Task<'scope>>> {
        // Task bodies run outside every queue lock, so a panicking task can
        // never poison a queue; recover defensively anyway.
        match self.queues[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Pop own work LIFO, then steal FIFO round-robin from the others.
    fn find_task(&self, home: usize) -> Option<Task<'scope>> {
        if let Some(task) = self.lock_queue(home).pop_back() {
            return Some(task);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (home + offset) % n;
            if let Some(task) = self.lock_queue(victim).pop_front() {
                return Some(task);
            }
        }
        None
    }

    fn has_queued_task(&self) -> bool {
        self.queues.iter().enumerate().any(|(i, _)| {
            let queue = self.lock_queue(i);
            !queue.is_empty()
        })
    }

    fn notify_one(&self) {
        let _guard = self.idle.lock();
        self.cond.notify_one();
    }

    fn notify_all(&self) {
        let _guard = self.idle.lock();
        self.cond.notify_all();
    }

    /// Block until there is (probably) something to do. `waiting_for_zero`
    /// is set by the scope owner, which must also wake when all tasks have
    /// finished. The timeout is a belt-and-braces guard against lost
    /// wakeups; correctness does not depend on its value.
    fn park(&self, waiting_for_zero: bool) {
        let guard = match self.idle.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if self.done.load(Ordering::Acquire)
            || self.panicked.load(Ordering::Acquire)
            || self.has_queued_task()
            || (waiting_for_zero && self.pending.load(Ordering::Acquire) == 0)
        {
            return;
        }
        let _ = self.cond.wait_timeout(guard, Duration::from_millis(50));
    }

    /// Run one task with panic accounting: `pending` is decremented even if
    /// the task unwinds, and a panic wakes every waiter so the scope can
    /// shut down and propagate it.
    fn run(&self, task: Task<'scope>, scope: &Scope<'scope>) {
        let guard = CompletionGuard { state: self };
        task(scope);
        drop(guard);
    }
}

struct CompletionGuard<'a, 'scope> {
    state: &'a State<'scope>,
}

impl Drop for CompletionGuard<'_, '_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.state.panicked.store(true, Ordering::Release);
        }
        if self.state.pending.fetch_sub(1, Ordering::AcqRel) == 1
            || self.state.panicked.load(Ordering::Acquire)
        {
            self.state.notify_all();
        }
    }
}

/// Handle for spawning tasks inside a [`ThreadPool::scope`] call. Cloning is
/// cheap; each executing task receives the handle of its worker so nested
/// spawns land on that worker's deque.
pub struct Scope<'scope> {
    state: Arc<State<'scope>>,
    home: usize,
}

impl<'scope> Scope<'scope> {
    /// Spawn a task into the scope. The task may borrow anything that
    /// outlives the `scope` call and may spawn further tasks through the
    /// handle it receives; the `scope` call returns only after every spawned
    /// task has finished.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        self.state.lock_queue(self.home).push_back(Box::new(f));
        self.state.notify_one();
    }
}

fn worker_loop<'scope>(state: &Arc<State<'scope>>, home: usize) {
    let scope = Scope {
        state: Arc::clone(state),
        home,
    };
    loop {
        if state.done.load(Ordering::Acquire) || state.panicked.load(Ordering::Acquire) {
            break;
        }
        match state.find_task(home) {
            Some(task) => state.run(task, &scope),
            None => state.park(false),
        }
    }
}

impl ThreadPool {
    /// Number of worker threads (including the caller, which participates in
    /// running tasks while a `scope` drains).
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Create a scope for spawning a dynamic tree of tasks. `f` runs on the
    /// calling thread and receives the scope handle; `scope` returns `f`'s
    /// result once every task spawned (transitively) inside has completed.
    /// The calling thread counts as one of the pool's workers — it helps
    /// drain the queues after `f` returns — so a pool of `N` threads spawns
    /// `N − 1` extra OS threads for the duration of the call.
    ///
    /// Panics from tasks are propagated to the caller after the scope shuts
    /// down.
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope>) -> R,
    {
        let workers = self.threads.max(1);
        let state: Arc<State<'scope>> = Arc::new(State::new(workers));
        std::thread::scope(|ts| {
            for home in 1..workers {
                let state = Arc::clone(&state);
                ts.spawn(move || worker_loop(&state, home));
            }
            let scope = Scope {
                state: Arc::clone(&state),
                home: 0,
            };
            let result = f(&scope);
            // Help drain until every task has finished (or one panicked —
            // the panic then resurfaces when `std::thread::scope` joins).
            loop {
                if state.panicked.load(Ordering::Acquire) {
                    break;
                }
                match state.find_task(0) {
                    Some(task) => state.run(task, &scope),
                    None => {
                        if state.pending.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        state.park(true);
                    }
                }
            }
            state.done.store(true, Ordering::Release);
            state.notify_all();
            result
        })
    }

    /// Run two closures, potentially in parallel, and return both results —
    /// the binary splitter for divide-and-conquer fan-out. `a` runs on the
    /// calling thread; `b` is offered to the pool and executed by whichever
    /// thread gets to it first.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RB: Send,
    {
        let mut rb = None;
        let ra = self.scope(|scope| {
            scope.spawn(|_| rb = Some(b()));
            a()
        });
        (ra, rb.expect("join: spawned half completed with the scope"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn builder_defaults_to_available_parallelism() {
        let p = ThreadPoolBuilder::new().build().unwrap();
        assert!(p.current_num_threads() >= 1);
        assert_eq!(pool(3).current_num_threads(), 3);
    }

    #[test]
    fn scope_runs_every_spawned_task() {
        for threads in [1, 2, 4, 8] {
            let counter = AtomicUsize::new(0);
            pool(threads).scope(|s| {
                for _ in 0..100 {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 100, "threads={threads}");
        }
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        let counter = AtomicUsize::new(0);
        pool(4).scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..4 {
                        s.spawn(|s| {
                            counter.fetch_add(1, Ordering::Relaxed);
                            s.spawn(|_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 + 8 * 4 + 8 * 4);
    }

    #[test]
    fn scope_returns_the_closure_result_and_borrows_work() {
        let data = vec![1u64, 2, 3, 4];
        let total = AtomicUsize::new(0);
        let label = pool(2).scope(|s| {
            for value in &data {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(*value as usize, Ordering::Relaxed);
                });
            }
            "done"
        });
        assert_eq!(label, "done");
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn join_returns_both_results() {
        let p = pool(2);
        let (a, b) = p.join(|| 6 * 7, || "forty-two".len());
        assert_eq!(a, 42);
        assert_eq!(b, 9);
        // Nested joins (divide and conquer) work too.
        fn sum(p: &ThreadPool, xs: &[u64]) -> u64 {
            if xs.len() <= 2 {
                return xs.iter().sum();
            }
            let mid = xs.len() / 2;
            let (lo, hi) = p.join(|| sum(p, &xs[..mid]), || sum(p, &xs[mid..]));
            lo + hi
        }
        let xs: Vec<u64> = (1..=64).collect();
        assert_eq!(sum(&p, &xs), 64 * 65 / 2);
    }

    #[test]
    fn tasks_run_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        pool(4).scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    // Encourage interleaving so several workers get a slice.
                    std::thread::sleep(Duration::from_micros(200));
                });
            }
        });
        // At least the participating caller ran tasks; with spare cores more
        // threads join in, but a 1-core machine legitimately serializes.
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn panics_in_tasks_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            pool(2).scope(|s| {
                s.spawn(|_| panic!("task panic"));
                for _ in 0..8 {
                    s.spawn(|_| std::thread::sleep(Duration::from_millis(1)));
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn single_threaded_pool_still_completes_scopes() {
        let counter = AtomicUsize::new(0);
        pool(1).scope(|s| {
            for _ in 0..10 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }
}

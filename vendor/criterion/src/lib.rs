//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of criterion's API its benches actually use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — per benchmark it warms up, then
//! takes `sample_size` wall-clock samples within `measurement_time` and
//! prints the min/mean per-iteration times. No statistical analysis, HTML
//! reports or comparison against saved baselines; the numbers are honest
//! but the harness exists first and foremost so `cargo bench --no-run`
//! compile-gates the bench code in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Force the compiler to treat `value` as used (defeats constant folding).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function_name, &self.parameter) {
            (Some(n), Some(p)) => write!(f, "{n}/{p}"),
            (Some(n), None) => write!(f, "{n}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: Some(name),
            parameter: None,
        }
    }
}

/// Throughput metadata attached to a group (reported alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times closures handed to it by benchmark functions.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size,
            measurement_time,
        }
    }

    /// Time `routine`, called repeatedly; its return value is black-boxed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and iteration-count calibration: target samples that are
        // long enough to time reliably but fit the measurement budget.
        let calibration = Instant::now();
        black_box(routine());
        let one = calibration.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time / (self.sample_size as u32).max(1);
        self.iters_per_sample = (per_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
            if budget.elapsed() > self.measurement_time * 2 {
                break; // calibration undershot; keep the harness bounded
            }
        }
    }

    fn report(&self) -> Option<(Duration, Duration)> {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return None;
        }
        let per_iter: Vec<Duration> = self
            .samples
            .iter()
            .map(|s| *s / self.iters_per_sample.min(u32::MAX as u64) as u32)
            .collect();
        let min = per_iter.iter().min().copied()?;
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        Some((min, mean))
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 10;
const DEFAULT_MEASUREMENT_TIME: Duration = Duration::from_millis(500);

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Attach throughput metadata to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher);
        self.criterion
            .print_result(&self.name, &id, self.throughput, &bencher);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher, input);
        self.criterion
            .print_result(&self.name, &id, self.throughput, &bencher);
        self
    }

    /// Finish the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a [`BenchmarkGroup`] named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            measurement_time: DEFAULT_MEASUREMENT_TIME,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(DEFAULT_SAMPLE_SIZE, DEFAULT_MEASUREMENT_TIME);
        f(&mut bencher);
        let id = BenchmarkId::from(name);
        self.print_result("", &id, None, &bencher);
        self
    }

    fn print_result(
        &self,
        group: &str,
        id: &BenchmarkId,
        throughput: Option<Throughput>,
        bencher: &Bencher,
    ) {
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        match bencher.report() {
            Some((min, mean)) => {
                let extra = match throughput {
                    Some(Throughput::Bytes(b)) => {
                        let secs = mean.as_secs_f64();
                        if secs > 0.0 {
                            format!("  {:.1} MiB/s", b as f64 / secs / (1024.0 * 1024.0))
                        } else {
                            String::new()
                        }
                    }
                    Some(Throughput::Elements(e)) => {
                        let secs = mean.as_secs_f64();
                        if secs > 0.0 {
                            format!("  {:.0} elem/s", e as f64 / secs)
                        } else {
                            String::new()
                        }
                    }
                    None => String::new(),
                };
                println!("{label:<50} min {min:>12.2?}  mean {mean:>12.2?}{extra}");
            }
            None => println!("{label:<50} (no samples)"),
        }
    }
}

/// Collect benchmark functions into a group runner, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Bytes(8));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 3)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
        assert_eq!(BenchmarkId::from("name").to_string(), "name");
    }
}

//! `any::<T>()` — the canonical strategy of a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.coin()
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u128() as $ty
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy generating any value of type `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of proptest's API its property tests actually use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! * integer-range and tuple strategies, [`any`](arbitrary::any),
//!   [`collection::vec`] and [`sample::select`],
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros,
//! * [`ProptestConfig`](test_runner::ProptestConfig) with
//!   `PROPTEST_CASES` / `PROPTEST_RNG_SEED` environment overrides.
//!
//! Differences from upstream, chosen deliberately for CI determinism:
//!
//! * **No shrinking** — a failing case reports its case number, test name
//!   and seed instead of a minimized input.
//! * **Deterministic by default** — the RNG seed is fixed (see
//!   [`test_runner::ProptestConfig`]); every run explores the same cases.
//!   Set `PROPTEST_RNG_SEED` to explore a different stream and
//!   `PROPTEST_CASES` to change the per-test case count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Assert a condition inside a `proptest!` body, failing the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn commutes(a in 0u32..10, b in 0u32..10) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each generated `#[test]` runs `config.cases` deterministic cases; a
/// `prop_assert!` failure panics with the test name, case number and seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr);
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                // Build the strategies once; the tuple of strategies is
                // itself a strategy yielding a tuple of values per case.
                let strategies = ($($strategy,)+);
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for_case(case);
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::new_value(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "proptest `{}` failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name),
                            case + 1,
                            runner.cases(),
                            runner.seed(),
                            err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

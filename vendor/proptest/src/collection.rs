//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes, convertible from `usize` (exact),
/// `Range<usize>` and `RangeInclusive<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let len = self.size.lo + rng.below(span as u128) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generate a `Vec` whose length lies in `size`, with elements drawn from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

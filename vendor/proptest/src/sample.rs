//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u128) as usize;
        self.options[idx].clone()
    }
}

/// Uniformly select one of `options`.
///
/// # Panics
///
/// Panics (on first use) if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from empty options");
    Select { options }
}

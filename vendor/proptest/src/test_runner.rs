//! Configuration, deterministic RNG and failure plumbing for `proptest!`.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Default RNG seed: fixed so that CI runs are reproducible. Override with
/// the `PROPTEST_RNG_SEED` environment variable.
pub const DEFAULT_RNG_SEED: u64 = 0x6d_1ab5_2023;

/// Default number of cases per property. Override per test with
/// [`ProptestConfig::with_cases`] or globally with `PROPTEST_CASES` (the
/// environment variable wins, so CI can clamp the suite).
pub const DEFAULT_CASES: u32 = 256;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Seed for the deterministic RNG stream.
    pub rng_seed: u64,
}

impl ProptestConfig {
    /// A config running `cases` cases (still subject to the `PROPTEST_CASES`
    /// environment override, which takes precedence so CI stays in control).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
            rng_seed: DEFAULT_RNG_SEED,
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// An error failing a single test case (from `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A case failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Next uniform `u128`.
    pub fn next_u128(&mut self) -> u128 {
        ((self.inner.next_u64() as u128) << 64) | self.inner.next_u64() as u128
    }

    /// Uniform value in `[0, bound)` (modulo reduction; the bias is
    /// irrelevant for test-case generation).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "below(0)");
        self.next_u128() % bound
    }

    /// A fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Drives the cases of one property test.
#[derive(Clone, Debug)]
pub struct TestRunner {
    cases: u32,
    seed: u64,
}

impl TestRunner {
    /// Build a runner for the test named `name`, applying environment
    /// overrides to `config`.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let cases = env_u64("PROPTEST_CASES")
            .map(|c| c.min(u32::MAX as u64) as u32)
            .unwrap_or(config.cases)
            .max(1);
        let base = env_u64("PROPTEST_RNG_SEED").unwrap_or(config.rng_seed);
        // Mix the test name in so sibling tests explore independent streams.
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            cases,
            seed: base ^ h,
        }
    }

    /// Number of cases this runner executes.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The mixed seed (reported on failure for reproduction).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The RNG for one case: a fresh deterministic stream per case index, so
    /// any case can be re-run in isolation.
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng::from_seed(
            self.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)),
        )
    }
}

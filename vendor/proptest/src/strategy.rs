//! The [`Strategy`] trait and the primitive strategies (integer ranges,
//! tuples, `Just`, `prop_map`).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type `Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the runner's deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer ranges. Arithmetic runs in u128 two's complement so the full
// domain of every integer type (including i128) is handled uniformly.
macro_rules! int_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    (self.start as u128).wrapping_add(rng.below(span)) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128);
                    if span == u128::MAX {
                        return rng.next_u128() as $ty;
                    }
                    (lo as u128).wrapping_add(rng.below(span + 1)) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

//! The `gdlog` binary: evaluate `.gdl` scenario files end to end.
//!
//! All logic lives in [`gdlog::cli`] so the integration tests can drive the
//! interface in-process; this file only adapts process arguments and streams.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    let mut stderr = std::io::stderr().lock();
    let code = gdlog::cli::main_with(&args, &mut stdout, &mut stderr);
    std::process::exit(code);
}

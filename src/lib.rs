//! # gdlog — Generative Datalog with Stable Negation
//!
//! This facade crate re-exports the public API of the `gdlog` workspace, an
//! implementation of *Generative Datalog with Stable Negation* (Alviano,
//! Lanzinger, Morak, Pieris; PODS 2023).
//!
//! The most convenient entry points are:
//!
//! * [`gdlog_parser::parse_program`] / [`gdlog_parser::parse_database`] — read
//!   the surface syntax used throughout the paper's examples.
//! * [`gdlog_core::Program`] and [`gdlog_core::ProgramBuilder`] — build
//!   GDatalog¬\[Δ\] programs programmatically.
//! * [`gdlog_core::Pipeline`] — translate, ground, chase and obtain the output
//!   probability space of a program on a database.
//!
//! See the `examples/` directory for runnable end-to-end scenarios
//! (network resilience, coin games, dimes and quarters).

pub mod cli;

pub use gdlog_core as core;
pub use gdlog_data as data;
pub use gdlog_engine as engine;
pub use gdlog_parser as parser;
pub use gdlog_prob as prob;

/// Version of the gdlog workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Convenience prelude re-exporting the most commonly used types.
pub mod prelude {
    pub use gdlog_core::{
        ChaseBudget, Grounder, OutputSpace, PerfectGrounder, Pipeline, Program, ProgramBuilder,
        SimpleGrounder,
    };
    pub use gdlog_data::{Const, Database, GroundAtom, Predicate, Term};
    pub use gdlog_prob::{DeltaRegistry, Distribution, Prob, Rational};
}

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}

//! Command-line argument parsing for the `gdlog` binary.
//!
//! Hand-rolled (the build environment is offline, so no `clap`); the grammar
//! is small and fully deterministic:
//!
//! ```text
//! gdlog [run] <file.gdl> [flags]   evaluate a scenario
//! gdlog check <file.gdl>           parse + validate only
//! gdlog fmt <file.gdl>             reprint in canonical surface syntax
//! gdlog --help | --version
//! ```

use gdlog_core::{ChaseBudget, GrounderChoice, TriggerOrder};
use gdlog_engine::StableModelLimits;

/// What the invocation asked for.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Evaluate a scenario end to end (boxed: the options dwarf the other
    /// variants).
    Run(Box<RunOptions>),
    /// Parse and validate, reporting rule/fact counts.
    Check {
        /// Path to the `.gdl` file.
        path: String,
        /// Also run the full static-analysis lint pass (`--lint`).
        lint: bool,
        /// Treat warnings as errors for the exit code (`--deny-warnings`).
        deny_warnings: bool,
    },
    /// Run the full static-analysis lint pass (safety, chase termination,
    /// stratifiability, independence, hygiene).
    Lint {
        /// Path to the `.gdl` file.
        path: String,
        /// Emit the machine-readable JSON lint report.
        json: bool,
        /// Treat warnings as errors for the exit code.
        deny_warnings: bool,
    },
    /// Reprint the program in canonical surface syntax.
    Fmt {
        /// Path to the `.gdl` file.
        path: String,
    },
    /// Print usage.
    Help,
    /// Print the version.
    Version,
}

/// Options for `gdlog run`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOptions {
    /// Path to the `.gdl` scenario file.
    pub path: String,
    /// Emit the machine-readable JSON report instead of text.
    pub json: bool,
    /// Solve through the factored pipeline (`Pipeline::solve_factored`):
    /// independent chase components become a product of outcome spaces.
    pub factored: bool,
    /// Grounder selection (`--grounder simple|perfect|auto`).
    pub grounder: GrounderChoice,
    /// Worker threads (`--threads N`); `None` defers to `GDLOG_THREADS`.
    pub threads: Option<usize>,
    /// Trigger exploration order (`--trigger-order first|last|scrambled`).
    pub trigger_order: TriggerOrder,
    /// Chase budget: maximum outcomes to enumerate.
    pub max_outcomes: Option<usize>,
    /// Chase budget: maximum Δ-depth per path.
    pub max_depth: Option<usize>,
    /// Chase budget: maximum branching per Δ-term.
    pub max_branching: Option<usize>,
    /// Chase budget: drop paths below this probability.
    pub min_path_prob: Option<f64>,
    /// Stable-model search: cap on returned models.
    pub max_models: Option<usize>,
    /// Stable-model search: cap on branching atoms per component.
    pub max_branch_atoms: Option<usize>,
    /// Ground atoms to query (brave and cautious probability each).
    pub queries: Vec<String>,
    /// Condition every query on this ground atom (conditional probability).
    pub given: Option<String>,
    /// Predicates to report full marginals for.
    pub marginals: Vec<String>,
    /// Report the top-K events by probability mass.
    pub top: Option<usize>,
    /// Monte-Carlo sample count (estimates each `--query` by sampling).
    pub mc: Option<usize>,
    /// Monte-Carlo seed.
    pub seed: u64,
    /// Monte-Carlo per-walk trigger budget.
    pub max_triggers: usize,
}

impl RunOptions {
    fn new(path: String) -> Self {
        RunOptions {
            path,
            json: false,
            factored: false,
            grounder: GrounderChoice::Simple,
            threads: None,
            trigger_order: TriggerOrder::First,
            max_outcomes: None,
            max_depth: None,
            max_branching: None,
            min_path_prob: None,
            max_models: None,
            max_branch_atoms: None,
            queries: Vec::new(),
            given: None,
            marginals: Vec::new(),
            top: None,
            mc: None,
            seed: 0,
            max_triggers: 64,
        }
    }

    /// The chase budget implied by the flags (defaults from
    /// [`ChaseBudget::default`]).
    pub fn budget(&self) -> ChaseBudget {
        let mut b = ChaseBudget::default();
        if let Some(v) = self.max_outcomes {
            b.max_outcomes = v;
        }
        if let Some(v) = self.max_depth {
            b.max_depth = v;
        }
        if let Some(v) = self.max_branching {
            b.max_branching = v;
        }
        if let Some(v) = self.min_path_prob {
            b.min_path_probability = v;
        }
        b
    }

    /// The stable-model limits implied by the flags.
    pub fn limits(&self) -> StableModelLimits {
        let mut l = StableModelLimits::default();
        if let Some(v) = self.max_models {
            l.max_models = v;
        }
        if let Some(v) = self.max_branch_atoms {
            l.max_branch_atoms = v;
        }
        l
    }
}

/// The usage text printed by `--help` and on argument errors.
pub const USAGE: &str = "\
gdlog — Generative Datalog with stable negation (GDatalog¬[Δ])

USAGE:
    gdlog [run] <file.gdl> [flags]   evaluate a scenario
    gdlog check <file.gdl>           parse + validate only
    gdlog lint <file.gdl>            static analysis: safety, termination,
                                     stratifiability, independence, hygiene
    gdlog fmt <file.gdl>             reprint in canonical surface syntax
    gdlog --help | --version

CHECK FLAGS:
    --lint                     also run the full lint pass after validation
    --deny-warnings            exit nonzero on lint warnings

LINT FLAGS:
    --json                     machine-readable JSON lint report
    --deny-warnings            exit nonzero on warnings

RUN FLAGS:
    --json                     machine-readable JSON report
    --factored                 chase independent components separately and
                               answer from the product of their outcome
                               spaces (falls back to the flat path when the
                               program does not factor)
    --grounder <G>             simple | perfect | auto      (default simple)
    --threads <N>              worker threads (0 = all cores; default:
                               the GDLOG_THREADS environment variable, else 1)
    --trigger-order <O>        first | last | scrambled     (default first)
    --max-outcomes <N>         chase budget: outcomes to enumerate
    --max-depth <N>            chase budget: Δ-depth per path
    --max-branching <N>        chase budget: branching per Δ-term
    --min-path-prob <P>        chase budget: drop paths below mass P
    --max-models <N>           stable-model cap per outcome
    --max-branch-atoms <N>     stable-model branching-atom cap
    --query <Atom>             ground atom: report brave/cautious probability
                               (repeatable)
    --given <Atom>             condition every --query on this ground atom
    --marginal <Pred>          report marginals of every atom of a predicate
                               (repeatable)
    --top <K>                  report the K most probable events
    --mc <N>                   Monte-Carlo estimate each --query with N samples
    --seed <S>                 Monte-Carlo seed                (default 0)
    --max-triggers <N>         Monte-Carlo per-walk trigger cap (default 64)
";

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("flag `{flag}` expects a value"))?;
    raw.parse::<T>()
        .map_err(|_| format!("invalid value `{raw}` for flag `{flag}`"))
}

/// Parse command-line arguments (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(Command::Help);
    }
    if args.iter().any(|a| a == "--version" || a == "-V") {
        return Ok(Command::Version);
    }

    // Subcommand detection: `run` is optional; `fmt` takes no flags;
    // `check`/`lint` take only their own small flag sets.
    let (verb, rest) = match args[0].as_str() {
        v @ ("run" | "check" | "lint" | "fmt") => (v, &args[1..]),
        _ => ("run", args),
    };

    let mut path: Option<String> = None;
    let mut o = RunOptions::new(String::new());
    let mut lint_flag = false;
    let mut deny_warnings = false;
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        if !a.starts_with("--") {
            if path.is_some() {
                return Err(format!("unexpected argument `{a}`"));
            }
            path = Some(a.clone());
            i += 1;
            continue;
        }
        if verb == "check" || verb == "lint" {
            match a.as_str() {
                "--lint" if verb == "check" => lint_flag = true,
                "--json" if verb == "lint" => o.json = true,
                "--deny-warnings" => deny_warnings = true,
                other => return Err(format!("`gdlog {verb}` does not take `{other}`")),
            }
            i += 1;
            continue;
        }
        if verb != "run" {
            return Err(format!("`gdlog {verb}` takes no flags (got `{a}`)"));
        }
        let value = rest.get(i + 1);
        match a.as_str() {
            "--json" => {
                o.json = true;
                i += 1;
            }
            "--factored" => {
                o.factored = true;
                i += 1;
            }
            "--grounder" => {
                o.grounder = match value.map(String::as_str) {
                    Some("simple") => GrounderChoice::Simple,
                    Some("perfect") => GrounderChoice::Perfect,
                    Some("auto") => GrounderChoice::Auto,
                    Some(other) => {
                        return Err(format!(
                            "invalid grounder `{other}` (expected simple, perfect or auto)"
                        ))
                    }
                    None => return Err("flag `--grounder` expects a value".to_owned()),
                };
                i += 2;
            }
            "--trigger-order" => {
                o.trigger_order = match value.map(String::as_str) {
                    Some("first") => TriggerOrder::First,
                    Some("last") => TriggerOrder::Last,
                    Some("scrambled") => TriggerOrder::Scrambled,
                    Some(other) => {
                        return Err(format!(
                            "invalid trigger order `{other}` (expected first, last or scrambled)"
                        ))
                    }
                    None => return Err("flag `--trigger-order` expects a value".to_owned()),
                };
                i += 2;
            }
            "--threads" => {
                o.threads = Some(parse_value(a, value)?);
                i += 2;
            }
            "--max-outcomes" => {
                o.max_outcomes = Some(parse_value(a, value)?);
                i += 2;
            }
            "--max-depth" => {
                o.max_depth = Some(parse_value(a, value)?);
                i += 2;
            }
            "--max-branching" => {
                o.max_branching = Some(parse_value(a, value)?);
                i += 2;
            }
            "--min-path-prob" => {
                o.min_path_prob = Some(parse_value(a, value)?);
                i += 2;
            }
            "--max-models" => {
                o.max_models = Some(parse_value(a, value)?);
                i += 2;
            }
            "--max-branch-atoms" => {
                o.max_branch_atoms = Some(parse_value(a, value)?);
                i += 2;
            }
            "--query" => {
                o.queries
                    .push(value.ok_or("flag `--query` expects a ground atom")?.clone());
                i += 2;
            }
            "--given" => {
                o.given = Some(value.ok_or("flag `--given` expects a ground atom")?.clone());
                i += 2;
            }
            "--marginal" => {
                o.marginals.push(
                    value
                        .ok_or("flag `--marginal` expects a predicate name")?
                        .clone(),
                );
                i += 2;
            }
            "--top" => {
                o.top = Some(parse_value(a, value)?);
                i += 2;
            }
            "--mc" => {
                o.mc = Some(parse_value(a, value)?);
                i += 2;
            }
            "--seed" => {
                o.seed = parse_value(a, value)?;
                i += 2;
            }
            "--max-triggers" => {
                o.max_triggers = parse_value(a, value)?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let path = path.ok_or_else(|| "missing <file.gdl> argument".to_owned())?;
    match verb {
        "check" => Ok(Command::Check {
            path,
            lint: lint_flag,
            deny_warnings,
        }),
        "lint" => Ok(Command::Lint {
            path,
            json: o.json,
            deny_warnings,
        }),
        "fmt" => Ok(Command::Fmt { path }),
        _ => {
            o.path = path;
            Ok(Command::Run(Box::new(o)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_with_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "scenarios/coin.gdl",
            "--json",
            "--factored",
            "--grounder",
            "auto",
            "--query",
            "Coin(1)",
            "--top",
            "4",
            "--seed",
            "7",
        ]))
        .unwrap();
        let Command::Run(o) = cmd else {
            panic!("expected run")
        };
        assert_eq!(o.path, "scenarios/coin.gdl");
        assert!(o.json);
        assert!(o.factored);
        assert_eq!(o.grounder, GrounderChoice::Auto);
        assert_eq!(o.queries, vec!["Coin(1)".to_owned()]);
        assert_eq!(o.top, Some(4));
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn run_verb_is_optional() {
        let Command::Run(o) = parse_args(&args(&["x.gdl", "--mc", "100"])).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(o.path, "x.gdl");
        assert_eq!(o.mc, Some(100));
    }

    #[test]
    fn check_and_fmt_take_no_flags() {
        assert_eq!(
            parse_args(&args(&["check", "x.gdl"])).unwrap(),
            Command::Check {
                path: "x.gdl".into(),
                lint: false,
                deny_warnings: false,
            }
        );
        assert!(parse_args(&args(&["fmt", "x.gdl", "--json"])).is_err());
    }

    #[test]
    fn lint_and_check_flag_sets() {
        assert_eq!(
            parse_args(&args(&["lint", "x.gdl", "--json", "--deny-warnings"])).unwrap(),
            Command::Lint {
                path: "x.gdl".into(),
                json: true,
                deny_warnings: true,
            }
        );
        assert_eq!(
            parse_args(&args(&["check", "x.gdl", "--lint"])).unwrap(),
            Command::Check {
                path: "x.gdl".into(),
                lint: true,
                deny_warnings: false,
            }
        );
        // `--lint` belongs to check, `--json` to lint; the run flags belong
        // to neither.
        assert!(parse_args(&args(&["lint", "x.gdl", "--lint"])).is_err());
        assert!(parse_args(&args(&["check", "x.gdl", "--json"])).is_err());
        assert!(parse_args(&args(&["lint", "x.gdl", "--top", "3"])).is_err());
    }

    #[test]
    fn help_version_and_errors() {
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["-V"])).unwrap(), Command::Version);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert!(parse_args(&args(&["a.gdl", "b.gdl"])).is_err());
        assert!(parse_args(&args(&["a.gdl", "--grounder", "quantum"])).is_err());
        assert!(parse_args(&args(&["a.gdl", "--top"])).is_err());
        assert!(parse_args(&args(&["a.gdl", "--frobnicate"])).is_err());
    }

    #[test]
    fn budget_and_limits_overrides() {
        let Command::Run(o) = parse_args(&args(&[
            "x.gdl",
            "--max-outcomes",
            "10",
            "--max-branching",
            "8",
            "--min-path-prob",
            "0.001",
            "--max-models",
            "50",
        ]))
        .unwrap() else {
            panic!("expected run")
        };
        let b = o.budget();
        assert_eq!(b.max_outcomes, 10);
        assert_eq!(b.max_branching, 8);
        assert!((b.min_path_probability - 0.001).abs() < 1e-12);
        assert_eq!(b.max_depth, ChaseBudget::default().max_depth);
        assert_eq!(o.limits().max_models, 50);
    }
}

//! Command-line argument parsing for the `gdlog` binary.
//!
//! Hand-rolled (the build environment is offline, so no `clap`); the grammar
//! is small and fully deterministic:
//!
//! ```text
//! gdlog [run] <file.gdl> [flags]   evaluate a scenario
//! gdlog serve [flags]              resident server over the wire protocol
//! gdlog check <file.gdl>           parse + validate only
//! gdlog fmt <file.gdl>             reprint in canonical surface syntax
//! gdlog --help | --version
//! ```
//!
//! The run flags are the shared grammar of [`gdlog_server::flags`] — the
//! same parser serves the CLI and the wire `QUERY` command, so the two
//! front-ends cannot drift.

use gdlog_server::flags::{parse_query_flags, QueryFlags};
use gdlog_server::ServeConfig;

/// What the invocation asked for.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Evaluate a scenario end to end (boxed: the options dwarf the other
    /// variants).
    Run(Box<RunOptions>),
    /// Start the resident server.
    Serve(ServeConfig),
    /// Parse and validate, reporting rule/fact counts.
    Check {
        /// Path to the `.gdl` file.
        path: String,
        /// Also run the full static-analysis lint pass (`--lint`).
        lint: bool,
        /// Treat warnings as errors for the exit code (`--deny-warnings`).
        deny_warnings: bool,
    },
    /// Run the full static-analysis lint pass (safety, chase termination,
    /// stratifiability, independence, hygiene).
    Lint {
        /// Path to the `.gdl` file.
        path: String,
        /// Emit the machine-readable JSON lint report.
        json: bool,
        /// Treat warnings as errors for the exit code.
        deny_warnings: bool,
    },
    /// Reprint the program in canonical surface syntax.
    Fmt {
        /// Path to the `.gdl` file.
        path: String,
    },
    /// Print usage.
    Help,
    /// Print the version.
    Version,
}

/// Options for `gdlog run`: the scenario path plus the shared query flags.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOptions {
    /// Path to the `.gdl` scenario file.
    pub path: String,
    /// The shared run/query flag set (grounder, strategy, budgets, queries,
    /// Monte-Carlo parameters, output format).
    pub flags: QueryFlags,
}

/// The usage text printed by `--help` and on argument errors.
pub const USAGE: &str = "\
gdlog — Generative Datalog with stable negation (GDatalog¬[Δ])

USAGE:
    gdlog [run] <file.gdl> [flags]   evaluate a scenario
    gdlog serve [flags]              resident server: sessions over a wire
                                     protocol, warm compiled-program cache
    gdlog check <file.gdl>           parse + validate only
    gdlog lint <file.gdl>            static analysis: safety, termination,
                                     stratifiability, independence, hygiene
    gdlog fmt <file.gdl>             reprint in canonical surface syntax
    gdlog --help | --version

CHECK FLAGS:
    --lint                     also run the full lint pass after validation
    --deny-warnings            exit nonzero on lint warnings

LINT FLAGS:
    --json                     machine-readable JSON lint report
    --deny-warnings            exit nonzero on warnings

SERVE FLAGS:
    --addr <A>                 bind address            (default 127.0.0.1:7171)
    --threads <N>              worker threads (0 = all cores; default:
                               the GDLOG_THREADS environment variable, else 1)
    --max-inflight <N>         concurrent solves admitted      (default 4)
    --max-queued <N>           queries queued beyond that, then rejected
                               with a typed `overloaded` error (default 16)
    --timeout-ms <N>           default per-query deadline; queries degrade
                               gracefully (exact residual mass, marked
                               interrupted) or return `deadline-exceeded`
    --io-timeout-ms <N>        tear down connections stalled or idle for N ms

RUN FLAGS:
    --json                     machine-readable JSON report
    --strategy <S>             flat | factored | auto       (default flat)
                               factored: chase independent components
                               separately and answer from the product of
                               their outcome spaces; auto: let the static
                               analysis pick
    --factored                 alias for --strategy factored
    --grounder <G>             simple | perfect | auto      (default simple)
    --threads <N>              worker threads (0 = all cores; default:
                               the GDLOG_THREADS environment variable, else 1)
    --trigger-order <O>        first | last | scrambled     (default first)
    --max-outcomes <N>         chase budget: outcomes to enumerate
    --max-depth <N>            chase budget: Δ-depth per path
    --max-branching <N>        chase budget: branching per Δ-term
    --min-path-prob <P>        chase budget: drop paths below mass P
    --max-models <N>           stable-model cap per outcome
    --max-branch-atoms <N>     stable-model branching-atom cap
    --query <Atom>             ground atom: report brave/cautious probability
                               (repeatable)
    --given <Atom>             condition every --query on this ground atom
    --marginal <Pred>          report marginals of every atom of a predicate
                               (repeatable)
    --top <K>                  report the K most probable events
    --mc <N>                   Monte-Carlo estimate each --query with N samples
    --seed <S>                 Monte-Carlo seed                (default 0)
    --max-triggers <N>         Monte-Carlo per-walk trigger cap (default 64)
    --timeout-ms <N>           per-query deadline: degrade gracefully with
                               exact residual mass, or a typed interruption
";

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("flag `{flag}` expects a value"))?;
    raw.parse::<T>()
        .map_err(|_| format!("invalid value `{raw}` for flag `{flag}`"))
}

fn parse_serve(rest: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        let value = rest.get(i + 1);
        match a.as_str() {
            "--addr" => {
                config.addr = value.ok_or("flag `--addr` expects a value")?.clone();
                i += 2;
            }
            "--threads" => {
                config.threads = Some(parse_value(a, value)?);
                i += 2;
            }
            "--max-inflight" => {
                config.max_inflight = parse_value(a, value)?;
                i += 2;
            }
            "--max-queued" => {
                config.max_queued = parse_value(a, value)?;
                i += 2;
            }
            "--timeout-ms" => {
                config.timeout_ms = Some(parse_value(a, value)?);
                i += 2;
            }
            "--io-timeout-ms" => {
                config.io_timeout_ms = Some(parse_value(a, value)?);
                i += 2;
            }
            other => return Err(format!("`gdlog serve` does not take `{other}`")),
        }
    }
    Ok(config)
}

/// Parse command-line arguments (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(Command::Help);
    }
    if args.iter().any(|a| a == "--version" || a == "-V") {
        return Ok(Command::Version);
    }

    // Subcommand detection: `run` is optional; `serve` takes no path;
    // `fmt` takes no flags; `check`/`lint` take only their own small sets.
    let (verb, rest) = match args[0].as_str() {
        v @ ("run" | "serve" | "check" | "lint" | "fmt") => (v, &args[1..]),
        _ => ("run", args),
    };

    if verb == "serve" {
        return Ok(Command::Serve(parse_serve(rest)?));
    }

    if verb == "run" {
        let (flags, positionals) = parse_query_flags(rest)?;
        let mut positionals = positionals.into_iter();
        let path = positionals
            .next()
            .ok_or_else(|| "missing <file.gdl> argument".to_owned())?;
        if let Some(extra) = positionals.next() {
            return Err(format!("unexpected argument `{extra}`"));
        }
        return Ok(Command::Run(Box::new(RunOptions { path, flags })));
    }

    let mut path: Option<String> = None;
    let mut json = false;
    let mut lint_flag = false;
    let mut deny_warnings = false;
    for a in rest {
        if !a.starts_with("--") {
            if path.is_some() {
                return Err(format!("unexpected argument `{a}`"));
            }
            path = Some(a.clone());
            continue;
        }
        if verb == "fmt" {
            return Err(format!("`gdlog fmt` takes no flags (got `{a}`)"));
        }
        match a.as_str() {
            "--lint" if verb == "check" => lint_flag = true,
            "--json" if verb == "lint" => json = true,
            "--deny-warnings" => deny_warnings = true,
            other => return Err(format!("`gdlog {verb}` does not take `{other}`")),
        }
    }
    let path = path.ok_or_else(|| "missing <file.gdl> argument".to_owned())?;
    match verb {
        "check" => Ok(Command::Check {
            path,
            lint: lint_flag,
            deny_warnings,
        }),
        "lint" => Ok(Command::Lint {
            path,
            json,
            deny_warnings,
        }),
        _ => Ok(Command::Fmt { path }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_core::api::SolveStrategy;
    use gdlog_core::{ChaseBudget, GrounderChoice};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_with_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "scenarios/coin.gdl",
            "--json",
            "--factored",
            "--grounder",
            "auto",
            "--query",
            "Coin(1)",
            "--top",
            "4",
            "--seed",
            "7",
        ]))
        .unwrap();
        let Command::Run(o) = cmd else {
            panic!("expected run")
        };
        assert_eq!(o.path, "scenarios/coin.gdl");
        assert!(o.flags.json);
        assert_eq!(o.flags.strategy, SolveStrategy::Factored);
        assert_eq!(o.flags.grounder, GrounderChoice::Auto);
        assert_eq!(o.flags.queries, vec!["Coin(1)".to_owned()]);
        assert_eq!(o.flags.top, Some(4));
        assert_eq!(o.flags.seed, 7);
    }

    #[test]
    fn run_verb_is_optional() {
        let Command::Run(o) = parse_args(&args(&["x.gdl", "--mc", "100"])).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(o.path, "x.gdl");
        assert_eq!(o.flags.mc, Some(100));
    }

    #[test]
    fn strategy_flag_and_factored_alias_agree() {
        let Command::Run(a) = parse_args(&args(&["x.gdl", "--strategy", "auto"])).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(a.flags.strategy, SolveStrategy::Auto);
        let Command::Run(b) = parse_args(&args(&["x.gdl", "--factored"])).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(b.flags.strategy, SolveStrategy::Factored);
    }

    #[test]
    fn parses_serve_flags() {
        let Command::Serve(config) = parse_args(&args(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--max-inflight",
            "8",
            "--max-queued",
            "3",
            "--timeout-ms",
            "1500",
            "--io-timeout-ms",
            "30000",
        ]))
        .unwrap() else {
            panic!("expected serve")
        };
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.threads, Some(2));
        assert_eq!((config.max_inflight, config.max_queued), (8, 3));
        assert_eq!(config.timeout_ms, Some(1500));
        assert_eq!(config.io_timeout_ms, Some(30000));
        // Defaults, and the flag set is closed.
        let Command::Serve(d) = parse_args(&args(&["serve"])).unwrap() else {
            panic!("expected serve")
        };
        assert_eq!(d, ServeConfig::default());
        assert!(parse_args(&args(&["serve", "--query", "X"])).is_err());
    }

    #[test]
    fn check_and_fmt_take_no_flags() {
        assert_eq!(
            parse_args(&args(&["check", "x.gdl"])).unwrap(),
            Command::Check {
                path: "x.gdl".into(),
                lint: false,
                deny_warnings: false,
            }
        );
        assert!(parse_args(&args(&["fmt", "x.gdl", "--json"])).is_err());
    }

    #[test]
    fn lint_and_check_flag_sets() {
        assert_eq!(
            parse_args(&args(&["lint", "x.gdl", "--json", "--deny-warnings"])).unwrap(),
            Command::Lint {
                path: "x.gdl".into(),
                json: true,
                deny_warnings: true,
            }
        );
        assert_eq!(
            parse_args(&args(&["check", "x.gdl", "--lint"])).unwrap(),
            Command::Check {
                path: "x.gdl".into(),
                lint: true,
                deny_warnings: false,
            }
        );
        // `--lint` belongs to check, `--json` to lint; the run flags belong
        // to neither.
        assert!(parse_args(&args(&["lint", "x.gdl", "--lint"])).is_err());
        assert!(parse_args(&args(&["check", "x.gdl", "--json"])).is_err());
        assert!(parse_args(&args(&["lint", "x.gdl", "--top", "3"])).is_err());
    }

    #[test]
    fn help_version_and_errors() {
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["-V"])).unwrap(), Command::Version);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert!(parse_args(&args(&["a.gdl", "b.gdl"])).is_err());
        assert!(parse_args(&args(&["a.gdl", "--grounder", "quantum"])).is_err());
        assert!(parse_args(&args(&["a.gdl", "--top"])).is_err());
        assert!(parse_args(&args(&["a.gdl", "--frobnicate"])).is_err());
    }

    #[test]
    fn budget_and_limits_overrides() {
        let Command::Run(o) = parse_args(&args(&[
            "x.gdl",
            "--max-outcomes",
            "10",
            "--max-branching",
            "8",
            "--min-path-prob",
            "0.001",
            "--max-models",
            "50",
        ]))
        .unwrap() else {
            panic!("expected run")
        };
        let b = o.flags.budget();
        assert_eq!(b.max_outcomes, 10);
        assert_eq!(b.max_branching, 8);
        assert!((b.min_path_probability - 0.001).abs() < 1e-12);
        assert_eq!(b.max_depth, ChaseBudget::default().max_depth);
        assert_eq!(o.flags.limits().max_models, 50);
    }
}

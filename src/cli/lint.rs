//! The `gdlog lint` / `gdlog check --lint` driver.
//!
//! Runs the core static analyses ([`gdlog_core::lint`]) over a parsed
//! scenario — rule safety, weak-acyclicity chase-termination, predicate-level
//! stratifiability, static independence and hygiene — and renders every
//! finding as a caret diagnostic at the offending literal, head argument or
//! variable occurrence, or as a deterministic JSON report for the golden
//! corpus.

use super::json::Json;
use gdlog_core::Severity;
use gdlog_parser::parse_source;
use std::cmp::Reverse;

/// One lint finding resolved to a source position.
#[derive(Clone, Debug)]
pub struct SpannedFinding {
    /// Error / warning / note.
    pub severity: Severity,
    /// Stable machine-readable finding code (e.g. `chase-may-not-terminate`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Index of the program rule the finding is attached to, if any.
    pub rule: Option<usize>,
    /// 1-based line (0 = no position).
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// The result of linting one scenario.
#[derive(Clone, Debug)]
pub struct LintOutcome {
    /// Findings in render order: by source position, then severity
    /// (errors first), then code and message — fully deterministic.
    pub findings: Vec<SpannedFinding>,
    /// Number of static independence components the translated program
    /// splits into (`None` when the program does not validate).
    pub static_components: Option<usize>,
    /// Rule count after constraint desugaring.
    pub rules: usize,
    /// Ground fact count.
    pub facts: usize,
    /// Does the program have stratified negation?
    pub stratified: bool,
}

impl LintOutcome {
    /// Number of findings at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// The process exit code: 1 on errors (or, under `--deny-warnings`, on
    /// warnings), 0 otherwise. Notes never affect the exit code.
    pub fn exit_code(&self, deny_warnings: bool) -> i32 {
        let gating =
            self.count(Severity::Error) > 0 || (deny_warnings && self.count(Severity::Warning) > 0);
        i32::from(gating)
    }

    /// One-line human summary.
    pub fn summary(&self, path: &str) -> String {
        let components = match self.static_components {
            Some(k) => format!(", static components: {k}"),
            None => String::new(),
        };
        if self.findings.is_empty() {
            format!("ok: {path}: lint clean{components}")
        } else {
            format!(
                "lint: {path}: {} errors, {} warnings, {} notes{components}",
                self.count(Severity::Error),
                self.count(Severity::Warning),
                self.count(Severity::Note),
            )
        }
    }

    /// The deterministic JSON lint report (golden-file format).
    pub fn render_json(&self, path: &str) -> String {
        Json::obj([
            ("source", Json::str(path)),
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::obj([
                                ("severity", Json::str(f.severity.label())),
                                ("code", Json::str(f.code)),
                                ("message", Json::str(&f.message)),
                                ("line", Json::Int(f.line as i128)),
                                ("column", Json::Int(f.column as i128)),
                                (
                                    "rule",
                                    match f.rule {
                                        Some(r) => Json::Int(r as i128),
                                        None => Json::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("errors", Json::Int(self.count(Severity::Error) as i128)),
            ("warnings", Json::Int(self.count(Severity::Warning) as i128)),
            ("notes", Json::Int(self.count(Severity::Note) as i128)),
            (
                "static_components",
                match self.static_components {
                    Some(k) => Json::Int(k as i128),
                    None => Json::Null,
                },
            ),
        ])
        .render()
    }
}

/// Parse and lint a source text.
///
/// Lexical/syntactic failures come back as an already-rendered diagnostic
/// (`Err`); everything the static analyses find — validation errors included
/// — lands in the returned [`LintOutcome`].
pub fn lint_source(path: &str, source: &str) -> Result<LintOutcome, String> {
    let parsed = parse_source(source).map_err(|e| e.render(path, source))?;
    let (program, facts, spans) = parsed.into_spanned_parts();
    let report = gdlog_core::lint(&program, &facts);
    let mut findings: Vec<SpannedFinding> = report
        .findings
        .into_iter()
        .map(|f| {
            let span = f
                .rule
                .and_then(|r| spans.get(r))
                .map(|rs| rs.locus_span(&f.locus))
                .unwrap_or_default();
            SpannedFinding {
                severity: f.severity,
                code: f.code,
                message: f.message,
                rule: f.rule,
                line: span.line,
                column: span.column,
            }
        })
        .collect();
    // Span order with positionless findings last; errors outrank warnings
    // outrank notes at the same position.
    findings.sort_by(|a, b| {
        let key = |f: &SpannedFinding| {
            (
                if f.line == 0 { usize::MAX } else { f.line },
                f.column,
                Reverse(f.severity),
            )
        };
        key(a)
            .cmp(&key(b))
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.message.cmp(&b.message))
    });
    Ok(LintOutcome {
        findings,
        static_components: report.static_components,
        rules: program.len(),
        facts: facts.len(),
        stratified: program.has_stratified_negation(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_are_span_ordered_and_counted() {
        // Two unsafe heads plus a singleton note; order must follow source
        // position regardless of discovery order.
        let source = "A(1).\nA(x) -> B(y).\nA(x) -> C(z).\n";
        let outcome = lint_source("<input>", source).unwrap();
        assert!(
            outcome.count(Severity::Error) >= 2,
            "{:?}",
            outcome.findings
        );
        let error_lines: Vec<usize> = outcome
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .map(|f| f.line)
            .collect();
        let mut sorted = error_lines.clone();
        sorted.sort_unstable();
        assert_eq!(error_lines, sorted);
        assert_eq!(outcome.exit_code(false), 1);
        // Invalid programs have no static component count.
        assert_eq!(outcome.static_components, None);
    }

    #[test]
    fn clean_programs_summarize_and_exit_zero() {
        let source =
            "Edge(1, 2).\nEdge(x, y) -> Path(x, y).\nPath(x, y), Edge(y, z) -> Path(x, z).\n";
        let outcome = lint_source("<input>", source).unwrap();
        let errors: Vec<_> = outcome
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(outcome.exit_code(false), 0);
        assert!(outcome.summary("p.gdl").contains("static components:"));
        let json = outcome.render_json("p.gdl");
        assert!(json.contains("\"static_components\""), "{json}");
        assert!(json.contains("\"errors\": 0"), "{json}");
    }

    #[test]
    fn deny_warnings_gates_the_exit_code() {
        // A weakly-cyclic Δ-recursion is a warning, not an error.
        let source = "Seed(1).\nSeed(x) -> Val(Flip<0.5>[x]).\nVal(v) -> Val(Flip<0.5>[v]).\n";
        let outcome = lint_source("<input>", source).unwrap();
        assert_eq!(outcome.count(Severity::Error), 0, "{:?}", outcome.findings);
        assert!(
            outcome.count(Severity::Warning) >= 1,
            "{:?}",
            outcome.findings
        );
        assert_eq!(outcome.exit_code(false), 0);
        assert_eq!(outcome.exit_code(true), 1);
    }
}

//! `gdlog serve`: boot the resident server and block.
//!
//! Prints one `serving on <addr>` line once the socket is bound (CI and
//! scripts wait for it), then parks the main thread while the accept loop
//! and per-connection handlers run in background threads. The process ends
//! via signal; sessions are per-connection, so no shutdown bookkeeping is
//! owed to clients.

use gdlog_server::ServeConfig;
use std::io::Write;

/// Run the resident server until the process is killed. Returns only on a
/// bind failure (exit code 1).
pub fn serve_command(config: &ServeConfig, stdout: &mut dyn Write, stderr: &mut dyn Write) -> i32 {
    let server = match gdlog_server::start(config) {
        Ok(server) => server,
        Err(e) => {
            let _ = writeln!(stderr, "error: cannot bind {}: {e}", config.addr);
            return 1;
        }
    };
    let _ = writeln!(
        stdout,
        "serving on {} (inflight {}, queued {})",
        server.local_addr(),
        config.max_inflight,
        config.max_queued
    );
    let _ = stdout.flush();
    loop {
        // The accept loop owns the work; nothing to do here but stay alive.
        std::thread::park();
    }
}

//! Re-export of the deterministic JSON tree, now owned by
//! [`gdlog_core::api::json`] so the CLI `--json` report, the lint report and
//! the `gdlog serve` wire responses all render through one implementation.
//! Kept as a module so `crate::cli::json::Json` call sites stay stable.

pub use gdlog_core::api::json::Json;

//! Re-export of the unified query response, now owned by
//! [`gdlog_core::api::response`] so `gdlog run --json`, the scenario-corpus
//! goldens and the `gdlog serve` wire responses are one schema rendered by
//! one implementation. `ScenarioReport` remains the CLI-facing name.

pub use gdlog_core::api::response::{EventReport, McReport, QueryReport};

/// The scenario report is the unified [`gdlog_core::api::QueryResponse`].
pub type ScenarioReport = gdlog_core::api::QueryResponse;

//! The scenario report: everything `gdlog run` learned about a program,
//! renderable as human text or deterministic JSON.
//!
//! The JSON form is the golden-file format of the scenario corpus and is
//! diffed byte-for-byte across CI's `GDLOG_THREADS` matrix legs, so it must
//! not contain anything environment-dependent — in particular the worker
//! thread count appears only in the *text* rendering.

use super::json::Json;
use gdlog_prob::Prob;
use std::fmt::Write as _;

/// Brave/cautious probabilities of one queried ground atom.
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// The queried atom, in display form.
    pub atom: String,
    /// Probability the atom holds in some stable model.
    pub brave: Prob,
    /// Probability the atom holds in every stable model (of a nonempty set).
    pub cautious: Prob,
    /// Conditional brave probability given the `--given` atom (brave-brave).
    pub brave_given: Option<Prob>,
    /// Conditional cautious probability given the `--given` atom.
    pub cautious_given: Option<Prob>,
}

/// One event (set of stable models) and its probability mass.
#[derive(Clone, Debug)]
pub struct EventReport {
    /// The event key, in display form.
    pub key: String,
    /// The event's probability mass.
    pub mass: Prob,
    /// Number of stable models in the set.
    pub models: usize,
}

/// Monte-Carlo estimate for one queried atom.
#[derive(Clone, Debug)]
pub struct McReport {
    /// The queried atom, in display form.
    pub atom: String,
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: usize,
    /// Number of abandoned walks (trigger budget exhausted).
    pub abandoned: usize,
}

/// The full report of one `gdlog run`.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario path as given on the command line.
    pub source: String,
    /// Program rules after constraint desugaring.
    pub rules: usize,
    /// Ground facts (the input database).
    pub facts: usize,
    /// Grounder actually requested (`simple` / `perfect` / `auto`).
    pub grounder: &'static str,
    /// Worker threads used (text rendering only; see module docs).
    pub threads: usize,
    /// Finite outcomes enumerated by the chase.
    pub outcomes: usize,
    /// Chase-tree nodes visited.
    pub nodes_visited: usize,
    /// Distinct events (sets of stable models).
    pub events: usize,
    /// Total mass of the explored events.
    pub explored_mass: Prob,
    /// Mass not explored (error event + beyond-budget paths).
    pub residual_mass: Prob,
    /// Did the chase hit its budget?
    pub truncated: bool,
    /// Probability that at least one stable model exists.
    pub p_stable: Prob,
    /// FNV-1a fingerprint of the event listing (the bench scheme).
    pub fingerprint: String,
    /// Per-query probabilities.
    pub queries: Vec<QueryReport>,
    /// The conditioning atom, if `--given` was passed.
    pub given: Option<String>,
    /// Marginals (per-atom brave/cautious) of `--marginal` predicates.
    pub marginals: Vec<QueryReport>,
    /// The `--top` K events by mass.
    pub top_events: Vec<EventReport>,
    /// Monte-Carlo estimates (`--mc`).
    pub mc: Vec<McReport>,
}

/// JSON encoding of a probability: always carries the display text and the
/// float value; exact rationals additionally carry numerator and denominator.
fn prob_json(p: &Prob) -> Json {
    match p.as_exact() {
        Some(r) => Json::obj([
            ("text", Json::str(p.to_string())),
            ("num", Json::Int(r.numer())),
            ("den", Json::Int(r.denom())),
            ("value", Json::Float(p.to_f64())),
        ]),
        None => Json::obj([
            ("text", Json::str(p.to_string())),
            ("value", Json::Float(p.to_f64())),
        ]),
    }
}

fn opt_prob_json(p: &Option<Prob>) -> Json {
    match p {
        Some(p) => prob_json(p),
        None => Json::Null,
    }
}

fn query_json(q: &QueryReport) -> Json {
    let mut pairs = vec![
        ("atom", Json::str(&q.atom)),
        ("brave", prob_json(&q.brave)),
        ("cautious", prob_json(&q.cautious)),
    ];
    if q.brave_given.is_some() || q.cautious_given.is_some() {
        pairs.push(("brave_given", opt_prob_json(&q.brave_given)));
        pairs.push(("cautious_given", opt_prob_json(&q.cautious_given)));
    }
    Json::obj(pairs)
}

impl ScenarioReport {
    /// Render the machine-readable JSON report (golden-file format).
    pub fn render_json(&self) -> String {
        let mut pairs = vec![
            ("source", Json::str(&self.source)),
            ("rules", Json::Int(self.rules as i128)),
            ("facts", Json::Int(self.facts as i128)),
            ("grounder", Json::str(self.grounder)),
            ("outcomes", Json::Int(self.outcomes as i128)),
            ("events", Json::Int(self.events as i128)),
            ("explored_mass", prob_json(&self.explored_mass)),
            ("residual_mass", prob_json(&self.residual_mass)),
            ("truncated", Json::Bool(self.truncated)),
            ("p_stable", prob_json(&self.p_stable)),
            ("fingerprint", Json::str(&self.fingerprint)),
        ];
        if let Some(g) = &self.given {
            pairs.push(("given", Json::str(g)));
        }
        pairs.push((
            "queries",
            Json::Arr(self.queries.iter().map(query_json).collect()),
        ));
        pairs.push((
            "marginals",
            Json::Arr(self.marginals.iter().map(query_json).collect()),
        ));
        pairs.push((
            "top_events",
            Json::Arr(
                self.top_events
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("key", Json::str(&e.key)),
                            ("mass", prob_json(&e.mass)),
                            ("models", Json::Int(e.models as i128)),
                        ])
                    })
                    .collect(),
            ),
        ));
        pairs.push((
            "mc",
            Json::Arr(
                self.mc
                    .iter()
                    .map(|m| {
                        Json::obj([
                            ("atom", Json::str(&m.atom)),
                            ("mean", Json::Float(m.mean)),
                            ("std_error", Json::Float(m.std_error)),
                            ("samples", Json::Int(m.samples as i128)),
                            ("abandoned", Json::Int(m.abandoned as i128)),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect()).render()
    }

    /// Render the human-readable text report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "source: {} ({} rules, {} facts)",
            self.source, self.rules, self.facts
        );
        let _ = writeln!(
            out,
            "grounder: {}, threads: {}",
            self.grounder, self.threads
        );
        let _ = writeln!(
            out,
            "outcomes: {} (nodes visited: {}), events: {}",
            self.outcomes, self.nodes_visited, self.events
        );
        let _ = writeln!(
            out,
            "explored mass: {}, residual mass: {}, truncated: {}",
            self.explored_mass,
            self.residual_mass,
            if self.truncated { "yes" } else { "no" }
        );
        let _ = writeln!(out, "P(stable model exists) = {}", self.p_stable);
        let _ = writeln!(out, "fingerprint: {}", self.fingerprint);
        for q in &self.queries {
            let _ = write!(
                out,
                "query {}: brave {}, cautious {}",
                q.atom, q.brave, q.cautious
            );
            if let (Some(g), Some(bg), Some(cg)) = (&self.given, &q.brave_given, &q.cautious_given)
            {
                let _ = write!(out, "; given {g}: brave {bg}, cautious {cg}");
            }
            out.push('\n');
        }
        for m in &self.marginals {
            let _ = writeln!(
                out,
                "marginal {}: brave {}, cautious {}",
                m.atom, m.brave, m.cautious
            );
        }
        if !self.top_events.is_empty() {
            let _ = writeln!(out, "top events by mass:");
            for e in &self.top_events {
                let _ = writeln!(out, "  {}  {} ({} models)", e.mass, e.key, e.models);
            }
        }
        for m in &self.mc {
            let _ = writeln!(
                out,
                "mc {}: mean {} ± {} ({} samples, {} abandoned)",
                m.atom, m.mean, m.std_error, m.samples, m.abandoned
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioReport {
        ScenarioReport {
            source: "scenarios/coin.gdl".into(),
            rules: 5,
            facts: 0,
            grounder: "simple",
            threads: 1,
            outcomes: 2,
            nodes_visited: 5,
            events: 2,
            explored_mass: Prob::ONE,
            residual_mass: Prob::ZERO,
            truncated: false,
            p_stable: Prob::ratio(1, 2),
            fingerprint: "cbf29ce484222325".into(),
            queries: vec![QueryReport {
                atom: "Coin(1)".into(),
                brave: Prob::ratio(1, 2),
                cautious: Prob::ratio(1, 2),
                brave_given: None,
                cautious_given: None,
            }],
            given: None,
            marginals: vec![],
            top_events: vec![EventReport {
                key: "{}".into(),
                mass: Prob::ratio(1, 2),
                models: 0,
            }],
            mc: vec![McReport {
                atom: "Coin(1)".into(),
                mean: 0.5,
                std_error: 0.025,
                samples: 400,
                abandoned: 0,
            }],
        }
    }

    #[test]
    fn text_report_mentions_the_essentials() {
        let text = sample().render_text();
        assert!(text.contains("P(stable model exists) = 1/2"));
        assert!(text.contains("query Coin(1): brave 1/2, cautious 1/2"));
        assert!(text.contains("fingerprint: cbf29ce484222325"));
        assert!(text.contains("mc Coin(1): mean 0.5"));
    }

    #[test]
    fn json_report_is_exact_and_thread_free() {
        let json = sample().render_json();
        assert!(json.contains("\"num\": 1"));
        assert!(json.contains("\"den\": 2"));
        assert!(json.contains("\"text\": \"1/2\""));
        assert!(json.contains("\"fingerprint\": \"cbf29ce484222325\""));
        // Thread counts must never reach the golden format.
        assert!(!json.contains("thread"));
    }
}

//! The `gdlog` command-line interface.
//!
//! `gdlog run scenario.gdl` parses the surface syntax, runs the full pipeline
//! (translate → ground → chase → stable models → output space) and prints a
//! [`report::ScenarioReport`] as text or, with `--json`, in the deterministic
//! golden-file format of the scenario corpus. Parse, validation and
//! stratification errors are rendered as caret diagnostics pointing into the
//! source file.
//!
//! The entire interface is exposed as a library (`main_with`) so the
//! integration tests drive it in-process with captured output.

pub mod args;
pub mod json;
pub mod lint;
pub mod report;

use args::{Command, RunOptions, USAGE};
use gdlog_core::{
    CoreError, FactoredSolve, GrounderChoice, OutputSpace, Pipeline, Program, RuleLocus, Severity,
};
use gdlog_data::GroundAtom;
use gdlog_parser::ast::RuleSpans;
use gdlog_parser::pretty::{pretty_atom, pretty_database, pretty_rule};
use gdlog_parser::{parse_database, parse_source, render_diagnostic_with, ParseError, RuleAst};
use gdlog_prob::Prob;
use lint::LintOutcome;
use report::{EventReport, McReport, QueryReport, ScenarioReport};
use std::io::Write;

/// Run the CLI against an argument list (excluding the program name),
/// writing to the given streams. Returns the process exit code: 0 on
/// success, 1 on evaluation errors, 2 on usage errors.
pub fn main_with(argv: &[String], stdout: &mut dyn Write, stderr: &mut dyn Write) -> i32 {
    let command = match args::parse_args(argv) {
        Ok(c) => c,
        Err(message) => {
            let _ = write!(stderr, "error: {message}\n\n{USAGE}");
            return 2;
        }
    };
    match command {
        Command::Help => {
            let _ = write!(stdout, "{USAGE}");
            0
        }
        Command::Version => {
            let _ = writeln!(stdout, "gdlog {}", crate::VERSION);
            0
        }
        Command::Check {
            path,
            lint: with_lint,
            deny_warnings,
        } => check_command(&path, with_lint, deny_warnings, stdout, stderr),
        Command::Lint {
            path,
            json,
            deny_warnings,
        } => lint_command(&path, json, deny_warnings, stdout, stderr),
        Command::Fmt { path } => match format_file(&path) {
            Ok(text) => {
                let _ = write!(stdout, "{text}");
                0
            }
            Err(rendered) => {
                let _ = write!(stderr, "{rendered}");
                1
            }
        },
        Command::Run(options) => match execute_run(&options) {
            Ok(report) => {
                if options.json {
                    let _ = write!(stdout, "{}", report.render_json());
                } else {
                    let _ = write!(stdout, "{}", report.render_text());
                }
                0
            }
            Err(rendered) => {
                let _ = write!(stderr, "{rendered}");
                1
            }
        },
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("error: cannot read {path}: {e}\n"))
}

/// Parse and validate a scenario file, rendering **every** validation error
/// as a caret diagnostic at its precise locus (offending variable, literal
/// or head argument), span-ordered. Returns the validated program, its
/// facts, and the per-rule literal spans (for later stratification
/// diagnostics).
fn load_program(
    path: &str,
    source: &str,
) -> Result<(Program, gdlog_data::Database, Vec<RuleSpans>), String> {
    let parsed = parse_source(source).map_err(|e| e.render(path, source))?;
    let (program, facts, spans) = parsed.into_spanned_parts();
    let issues = program.validate_all();
    if !issues.is_empty() {
        let mut diagnostics: Vec<(usize, usize, String)> = issues
            .into_iter()
            .map(|issue| {
                let span = spans
                    .get(issue.rule)
                    .map(|rs| rs.locus_span(&issue.locus))
                    .unwrap_or_default();
                (
                    if span.line == 0 {
                        usize::MAX
                    } else {
                        span.line
                    },
                    span.column,
                    ParseError {
                        message: issue.error.to_string(),
                        line: span.line,
                        column: span.column,
                    }
                    .render(path, source),
                )
            })
            .collect();
        diagnostics.sort();
        return Err(diagnostics
            .into_iter()
            .map(|(_, _, rendered)| rendered)
            .collect::<Vec<_>>()
            .join(""));
    }
    Ok((program, facts, spans))
}

/// Render a pipeline-construction error; stratification failures point at
/// the offending negative literal (head `to`, `from` in the negative body).
fn render_core_error(
    e: &CoreError,
    path: &str,
    source: &str,
    program: &Program,
    spans: &[RuleSpans],
) -> String {
    if let CoreError::NotStratified(ns) = e {
        let offending = program.rules().iter().enumerate().find_map(|(i, r)| {
            if r.head.predicate != ns.to {
                return None;
            }
            r.neg
                .iter()
                .position(|a| a.predicate == ns.from)
                .map(|neg_index| (i, neg_index))
        });
        if let Some((index, neg_index)) = offending {
            let span = spans
                .get(index)
                .map(|rs| rs.locus_span(&RuleLocus::Neg(neg_index)))
                .unwrap_or_default();
            let error = ParseError {
                message: e.to_string(),
                line: span.line,
                column: span.column,
            };
            return error.render(path, source);
        }
    }
    format!("error: {e}\n")
}

/// `gdlog check`: parse + validate (all diagnostics, span-ordered); with
/// `--lint`, run the full static-analysis pass as well.
fn check_command(
    path: &str,
    with_lint: bool,
    deny_warnings: bool,
    stdout: &mut dyn Write,
    stderr: &mut dyn Write,
) -> i32 {
    let source = match read_file(path) {
        Ok(s) => s,
        Err(rendered) => {
            let _ = write!(stderr, "{rendered}");
            return 1;
        }
    };
    let outcome = match lint::lint_source(path, &source) {
        Ok(o) => o,
        Err(rendered) => {
            let _ = write!(stderr, "{rendered}");
            return 1;
        }
    };
    // Plain `check` reports validation errors only; `--lint` (or a
    // `--deny-warnings` gate, which must show what it gates on) reports
    // everything.
    render_findings(
        &outcome,
        !with_lint && !deny_warnings,
        path,
        &source,
        stderr,
    );
    let code = outcome.exit_code(deny_warnings);
    if code == 0 {
        let _ = writeln!(
            stdout,
            "ok: {path}: {} rules, {} facts, stratified: {}",
            outcome.rules,
            outcome.facts,
            if outcome.stratified { "yes" } else { "no" }
        );
        if with_lint {
            let _ = writeln!(stdout, "{}", outcome.summary(path));
        }
    }
    code
}

/// `gdlog lint`: the full static-analysis pass, as caret diagnostics plus a
/// summary line, or as the deterministic JSON report with `--json`.
fn lint_command(
    path: &str,
    json: bool,
    deny_warnings: bool,
    stdout: &mut dyn Write,
    stderr: &mut dyn Write,
) -> i32 {
    let source = match read_file(path) {
        Ok(s) => s,
        Err(rendered) => {
            let _ = write!(stderr, "{rendered}");
            return 1;
        }
    };
    let outcome = match lint::lint_source(path, &source) {
        Ok(o) => o,
        Err(rendered) => {
            let _ = write!(stderr, "{rendered}");
            return 1;
        }
    };
    if json {
        let _ = write!(stdout, "{}", outcome.render_json(path));
    } else {
        render_findings(&outcome, false, path, &source, stderr);
        let _ = writeln!(stdout, "{}", outcome.summary(path));
    }
    outcome.exit_code(deny_warnings)
}

/// Render lint findings as caret diagnostics (errors only when
/// `errors_only`, e.g. for plain `gdlog check`).
fn render_findings(
    outcome: &LintOutcome,
    errors_only: bool,
    path: &str,
    source: &str,
    stderr: &mut dyn Write,
) {
    for f in &outcome.findings {
        if errors_only && f.severity != Severity::Error {
            continue;
        }
        let _ = write!(
            stderr,
            "{}",
            render_diagnostic_with(
                f.severity.label(),
                &format!("{} [{}]", f.message, f.code),
                path,
                source,
                f.line,
                f.column,
            )
        );
    }
}

fn format_file(path: &str) -> Result<String, String> {
    let source = read_file(path)?;
    let parsed = parse_source(&source).map_err(|e| e.render(path, &source))?;
    let mut out = String::new();
    // `%!` lines are scenario directives (`%! args:`, `%! expect:`), not
    // ordinary comments: the corpus harness executes them, so reformatting
    // must carry them through verbatim (in order, hoisted to the top).
    for line in source.lines() {
        if line.trim_start().starts_with("%!") {
            out.push_str(line.trim_start());
            out.push('\n');
        }
    }
    if !out.is_empty() {
        out.push('\n');
    }
    for statement in &parsed.statements {
        match statement {
            RuleAst::Rule(rule) => {
                out.push_str(&pretty_rule(rule));
                out.push('\n');
            }
            RuleAst::Constraint { pos, neg } => {
                let mut parts: Vec<String> = pos.iter().map(pretty_atom).collect();
                parts.extend(neg.iter().map(|a| format!("not {}", pretty_atom(a))));
                out.push_str(&parts.join(", "));
                out.push_str(" -> false.\n");
            }
        }
    }
    if !parsed.facts.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&pretty_database(&parsed.facts));
    }
    Ok(out)
}

/// Parse a ground atom written in surface syntax (e.g. `Coin(1)`,
/// `SomeDimeTail`, `Likes(#alice, 2)`).
fn parse_ground_atom(text: &str) -> Result<GroundAtom, String> {
    let db = parse_database(&format!("{text}."))
        .map_err(|e| format!("error: invalid ground atom `{text}`: {}\n", e.message))?;
    let mut atoms = db.canonical_atoms();
    if atoms.len() != 1 {
        return Err(format!("error: invalid ground atom `{text}`\n"));
    }
    Ok(atoms.pop().expect("one atom"))
}

/// Exact division of probabilities; `None` when the denominator is zero.
/// Delegates to [`Prob::div`], which gcd-reduces before cross-multiplying so
/// ratios of deep dyadic products stay exact instead of spilling to floats.
fn div_prob(num: &Prob, den: &Prob) -> Option<Prob> {
    num.div(den)
}

fn grounder_name(choice: GrounderChoice) -> &'static str {
    match choice {
        GrounderChoice::Simple => "simple",
        GrounderChoice::Perfect => "perfect",
        GrounderChoice::Auto => "auto",
    }
}

/// Evaluate a scenario end to end. Errors come back fully rendered
/// (diagnostics included) and ready to print.
pub fn execute_run(o: &RunOptions) -> Result<ScenarioReport, String> {
    let source = read_file(&o.path)?;
    let (program, facts, spans) = load_program(&o.path, &source)?;

    let mut pipeline = Pipeline::with_grounder(&program, &facts, o.grounder)
        .map_err(|e| render_core_error(&e, &o.path, &source, &program, &spans))?
        .budget(o.budget())
        .trigger_order(o.trigger_order)
        .stable_limits(o.limits());
    if let Some(threads) = o.threads {
        pipeline = pipeline.threads(threads);
    }

    let limits = o.limits();
    let (solve, nodes_visited, analysis) = if o.factored {
        // Factored path: independent chase components solved separately,
        // answers come from the product space (flat fallback when the
        // program has a single component). The verdict records whether the
        // static independence analysis alone settled the decomposition
        // (skipping saturation) or the dynamic Δ-analysis ran.
        let (solve, verdict) = pipeline
            .solve_factored_with_analysis()
            .map_err(|e| render_core_error(&e, &o.path, &source, &program, &spans))?;
        (solve, 0, Some(verdict.label()))
    } else {
        let chase = pipeline
            .chase()
            .map_err(|e| render_core_error(&e, &o.path, &source, &program, &spans))?;
        let nodes_visited = chase.nodes_visited;
        let space = OutputSpace::from_chase_with(
            chase,
            &limits,
            pipeline.executor(),
            Some(pipeline.stable_cache()),
        )
        .map_err(|e| render_core_error(&e, &o.path, &source, &program, &spans))?;
        (FactoredSolve::Flat(space), nodes_visited, None)
    };

    let given_atom = o.given.as_deref().map(parse_ground_atom).transpose()?;

    let mut queries = Vec::new();
    let mut query_atoms = Vec::new();
    for q in &o.queries {
        let atom = parse_ground_atom(q)?;
        let brave = solve.brave_probability(&atom);
        let cautious = solve.cautious_probability(&atom);
        let (brave_given, cautious_given) = match &given_atom {
            Some(g) => {
                let pair = [atom.clone(), g.clone()];
                let joint_brave = solve.probability_brave_all(&pair);
                let p_brave_g = solve.probability_brave_all(std::slice::from_ref(g));
                let joint_cautious = solve.probability_cautious_all(&pair);
                let p_cautious_g = solve.probability_cautious_all(std::slice::from_ref(g));
                (
                    div_prob(&joint_brave, &p_brave_g),
                    div_prob(&joint_cautious, &p_cautious_g),
                )
            }
            None => (None, None),
        };
        queries.push(QueryReport {
            atom: atom.to_string(),
            brave,
            cautious,
            brave_given,
            cautious_given,
        });
        query_atoms.push(atom);
    }

    let mut marginals = Vec::new();
    for pred in &o.marginals {
        for atom in solve.atoms_with_predicate(pred) {
            marginals.push(QueryReport {
                atom: atom.to_string(),
                brave: solve.brave_probability(&atom),
                cautious: solve.cautious_probability(&atom),
                brave_given: None,
                cautious_given: None,
            });
        }
    }

    let top_events = match o.top {
        Some(k) => solve
            .events_by_mass_top(k)
            .into_iter()
            .map(|(key, mass)| EventReport {
                models: key.model_count(),
                key: key.to_string(),
                mass,
            })
            .collect(),
        None => Vec::new(),
    };

    let mut mc_reports = Vec::new();
    if let Some(samples) = o.mc {
        if query_atoms.is_empty() {
            return Err("error: `--mc` requires at least one `--query` atom\n".to_owned());
        }
        for atom in &query_atoms {
            let mut estimator = pipeline.monte_carlo(o.max_triggers, o.seed);
            let stats = estimator
                .estimate(samples, |outcome| {
                    outcome.full_program().heads().contains(atom)
                })
                .map_err(|e| format!("error: {e}\n"))?;
            mc_reports.push(McReport {
                atom: atom.to_string(),
                mean: stats.estimate.mean,
                std_error: stats.estimate.std_error,
                samples: stats.samples,
                abandoned: stats.abandoned,
            });
        }
    }

    Ok(ScenarioReport {
        source: o.path.clone(),
        rules: program.len(),
        facts: facts.len(),
        grounder: grounder_name(o.grounder),
        threads: pipeline.executor().threads(),
        factors: solve.factor_count(),
        analysis,
        outcomes: solve.combined_outcomes(),
        nodes_visited,
        events: solve.combined_events(),
        explored_mass: solve.explored_mass(),
        residual_mass: solve.residual_mass(),
        truncated: solve.is_truncated(),
        p_stable: solve.has_stable_model_probability(),
        stable_cache: pipeline.stable_cache_stats(),
        fingerprint: solve.fingerprint(),
        queries,
        given: given_atom.as_ref().map(|a| a.to_string()),
        marginals,
        top_events,
        mc: mc_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(argv: &[&str]) -> (i32, String, String) {
        let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = main_with(&args, &mut out, &mut err);
        (
            code,
            String::from_utf8(out).expect("utf8 stdout"),
            String::from_utf8(err).expect("utf8 stderr"),
        )
    }

    fn temp_scenario(name: &str, text: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gdlog-cli-unit");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(name);
        std::fs::write(&path, text).expect("write scenario");
        path
    }

    #[test]
    fn help_version_and_usage_errors() {
        let (code, out, _) = run_cli(&["--help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        let (code, out, _) = run_cli(&["--version"]);
        assert_eq!(code, 0);
        assert!(out.starts_with("gdlog "));
        let (code, _, err) = run_cli(&["--frobnicate"]);
        assert_eq!(code, 2);
        assert!(err.contains("unknown flag"));
    }

    #[test]
    fn run_reports_the_coin_program() {
        let path = temp_scenario(
            "coin_unit.gdl",
            "-> Coin(Flip<0.5>).\nCoin(0) -> false.\nCoin(1), not Aux1 -> Aux2.\nCoin(1), not Aux2 -> Aux1.\n",
        );
        let (code, out, err) =
            run_cli(&[path.to_str().unwrap(), "--query", "Coin(1)", "--top", "4"]);
        assert_eq!(code, 0, "stderr: {err}");
        assert!(out.contains("P(stable model exists) = 1/2"), "{out}");
        assert!(
            out.contains("query Coin(1): brave 1/2, cautious 1/2"),
            "{out}"
        );

        let (code, json_out, _) = run_cli(&[path.to_str().unwrap(), "--json"]);
        assert_eq!(code, 0);
        assert!(json_out.contains("\"p_stable\""));
        assert!(json_out.contains("\"text\": \"1/2\""));
    }

    #[test]
    fn missing_file_and_bad_atom_are_reported() {
        let (code, _, err) = run_cli(&["/nonexistent/nope.gdl"]);
        assert_eq!(code, 1);
        assert!(err.contains("cannot read"));

        let path = temp_scenario("atom_unit.gdl", "-> Coin(Flip<0.5>).\n");
        let (code, _, err) = run_cli(&[path.to_str().unwrap(), "--query", "lower(1)"]);
        assert_eq!(code, 1);
        assert!(err.contains("invalid ground atom"), "{err}");
    }

    #[test]
    fn check_and_fmt_work() {
        let path = temp_scenario(
            "fmt_unit.gdl",
            "% comment\nA(x),not B(x)->C(x).  Edge(1,2).\nA(x),B(x)->false.\n",
        );
        let (code, out, _) = run_cli(&["check", path.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert!(out.contains("rules"), "{out}");

        let (code, out, _) = run_cli(&["fmt", path.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("A(x), not B(x) -> C(x).\n"), "{out}");
        assert!(out.contains("A(x), B(x) -> false.\n"), "{out}");
        assert!(out.contains("Edge(1, 2).\n"), "{out}");
    }

    #[test]
    fn parse_errors_render_carets() {
        let path = temp_scenario("diag_unit.gdl", "A(x) -> B(x)\n");
        let (code, _, err) = run_cli(&[path.to_str().unwrap()]);
        assert_eq!(code, 1);
        assert!(err.starts_with("error: "), "{err}");
        assert!(err.contains("-->"), "{err}");
        assert!(err.contains('^'), "{err}");
    }

    #[test]
    fn div_prob_is_exact_and_guards_zero() {
        let half = Prob::ratio(1, 2);
        let quarter = Prob::ratio(1, 4);
        assert_eq!(div_prob(&quarter, &half), Some(Prob::ratio(1, 2)));
        assert_eq!(div_prob(&half, &Prob::ZERO), None);
    }
}

//! The `gdlog` command-line interface.
//!
//! `gdlog run scenario.gdl` compiles the scenario into a warm
//! [`gdlog_core::api::Solver`] and dispatches one unified
//! [`gdlog_core::api::QueryRequest`] at it — exactly the path a resident
//! `gdlog serve` session takes, so a one-shot run and a served query produce
//! byte-identical reports. The report prints as text or, with `--json`, in
//! the deterministic golden-file format of the scenario corpus. Parse,
//! validation and stratification errors are rendered as caret diagnostics
//! pointing into the source file (via [`gdlog_server::compile`], shared with
//! the server).
//!
//! The entire interface is exposed as a library (`main_with`) so the
//! integration tests drive it in-process with captured output.

pub mod args;
pub mod json;
pub mod lint;
pub mod report;
pub mod serve;

use args::{Command, RunOptions, USAGE};
use gdlog_core::{Executor, Severity};
use gdlog_parser::pretty::{pretty_atom, pretty_database, pretty_rule};
use gdlog_parser::{parse_source, render_diagnostic_with, RuleAst};
use gdlog_server::{compile_source, render_core_error};
use lint::LintOutcome;
use report::ScenarioReport;
use std::io::Write;
use std::sync::Arc;

/// Run the CLI against an argument list (excluding the program name),
/// writing to the given streams. Returns the process exit code: 0 on
/// success, 1 on evaluation errors, 2 on usage errors.
pub fn main_with(argv: &[String], stdout: &mut dyn Write, stderr: &mut dyn Write) -> i32 {
    let command = match args::parse_args(argv) {
        Ok(c) => c,
        Err(message) => {
            let _ = write!(stderr, "error: {message}\n\n{USAGE}");
            return 2;
        }
    };
    match command {
        Command::Help => {
            let _ = write!(stdout, "{USAGE}");
            0
        }
        Command::Version => {
            let _ = writeln!(stdout, "gdlog {}", crate::VERSION);
            0
        }
        Command::Check {
            path,
            lint: with_lint,
            deny_warnings,
        } => check_command(&path, with_lint, deny_warnings, stdout, stderr),
        Command::Lint {
            path,
            json,
            deny_warnings,
        } => lint_command(&path, json, deny_warnings, stdout, stderr),
        Command::Fmt { path } => match format_file(&path) {
            Ok(text) => {
                let _ = write!(stdout, "{text}");
                0
            }
            Err(rendered) => {
                let _ = write!(stderr, "{rendered}");
                1
            }
        },
        Command::Serve(config) => serve::serve_command(&config, stdout, stderr),
        Command::Run(options) => match execute_run(&options) {
            Ok(report) => {
                if options.flags.json {
                    let _ = write!(stdout, "{}", report.render_json());
                } else {
                    let _ = write!(stdout, "{}", report.render_text());
                }
                0
            }
            Err(rendered) => {
                let _ = write!(stderr, "{rendered}");
                1
            }
        },
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("error: cannot read {path}: {e}\n"))
}

/// `gdlog check`: parse + validate (all diagnostics, span-ordered); with
/// `--lint`, run the full static-analysis pass as well.
fn check_command(
    path: &str,
    with_lint: bool,
    deny_warnings: bool,
    stdout: &mut dyn Write,
    stderr: &mut dyn Write,
) -> i32 {
    let source = match read_file(path) {
        Ok(s) => s,
        Err(rendered) => {
            let _ = write!(stderr, "{rendered}");
            return 1;
        }
    };
    let outcome = match lint::lint_source(path, &source) {
        Ok(o) => o,
        Err(rendered) => {
            let _ = write!(stderr, "{rendered}");
            return 1;
        }
    };
    // Plain `check` reports validation errors only; `--lint` (or a
    // `--deny-warnings` gate, which must show what it gates on) reports
    // everything.
    render_findings(
        &outcome,
        !with_lint && !deny_warnings,
        path,
        &source,
        stderr,
    );
    let code = outcome.exit_code(deny_warnings);
    if code == 0 {
        let _ = writeln!(
            stdout,
            "ok: {path}: {} rules, {} facts, stratified: {}",
            outcome.rules,
            outcome.facts,
            if outcome.stratified { "yes" } else { "no" }
        );
        if with_lint {
            let _ = writeln!(stdout, "{}", outcome.summary(path));
        }
    }
    code
}

/// `gdlog lint`: the full static-analysis pass, as caret diagnostics plus a
/// summary line, or as the deterministic JSON report with `--json`.
fn lint_command(
    path: &str,
    json: bool,
    deny_warnings: bool,
    stdout: &mut dyn Write,
    stderr: &mut dyn Write,
) -> i32 {
    let source = match read_file(path) {
        Ok(s) => s,
        Err(rendered) => {
            let _ = write!(stderr, "{rendered}");
            return 1;
        }
    };
    let outcome = match lint::lint_source(path, &source) {
        Ok(o) => o,
        Err(rendered) => {
            let _ = write!(stderr, "{rendered}");
            return 1;
        }
    };
    if json {
        let _ = write!(stdout, "{}", outcome.render_json(path));
    } else {
        render_findings(&outcome, false, path, &source, stderr);
        let _ = writeln!(stdout, "{}", outcome.summary(path));
    }
    outcome.exit_code(deny_warnings)
}

/// Render lint findings as caret diagnostics (errors only when
/// `errors_only`, e.g. for plain `gdlog check`).
fn render_findings(
    outcome: &LintOutcome,
    errors_only: bool,
    path: &str,
    source: &str,
    stderr: &mut dyn Write,
) {
    for f in &outcome.findings {
        if errors_only && f.severity != Severity::Error {
            continue;
        }
        let _ = write!(
            stderr,
            "{}",
            render_diagnostic_with(
                f.severity.label(),
                &format!("{} [{}]", f.message, f.code),
                path,
                source,
                f.line,
                f.column,
            )
        );
    }
}

fn format_file(path: &str) -> Result<String, String> {
    let source = read_file(path)?;
    let parsed = parse_source(&source).map_err(|e| e.render(path, &source))?;
    let mut out = String::new();
    // `%!` lines are scenario directives (`%! args:`, `%! expect:`), not
    // ordinary comments: the corpus harness executes them, so reformatting
    // must carry them through verbatim (in order, hoisted to the top).
    for line in source.lines() {
        if line.trim_start().starts_with("%!") {
            out.push_str(line.trim_start());
            out.push('\n');
        }
    }
    if !out.is_empty() {
        out.push('\n');
    }
    for statement in &parsed.statements {
        match statement {
            RuleAst::Rule(rule) => {
                out.push_str(&pretty_rule(rule));
                out.push('\n');
            }
            RuleAst::Constraint { pos, neg } => {
                let mut parts: Vec<String> = pos.iter().map(pretty_atom).collect();
                parts.extend(neg.iter().map(|a| format!("not {}", pretty_atom(a))));
                out.push_str(&parts.join(", "));
                out.push_str(" -> false.\n");
            }
        }
    }
    if !parsed.facts.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&pretty_database(&parsed.facts));
    }
    Ok(out)
}

/// Evaluate a scenario end to end: compile into a [`gdlog_core::api::Solver`]
/// and dispatch the flags as one unified request — the same code path a
/// resident server session runs, minus the wire. Errors come back fully
/// rendered (diagnostics included) and ready to print.
pub fn execute_run(o: &RunOptions) -> Result<ScenarioReport, String> {
    let source = read_file(&o.path)?;
    let executor = Arc::new(match o.flags.threads {
        Some(n) => Executor::new(n),
        None => Executor::from_env(),
    });
    let (solver, loaded) = compile_source(&o.path, &source, executor)?;
    let request = o
        .flags
        .to_request()
        .map_err(|msg| format!("error: {msg}\n"))?;
    solver
        .query(&request)
        .map_err(|e| render_core_error(&e, &o.path, &source, &loaded))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(argv: &[&str]) -> (i32, String, String) {
        let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = main_with(&args, &mut out, &mut err);
        (
            code,
            String::from_utf8(out).expect("utf8 stdout"),
            String::from_utf8(err).expect("utf8 stderr"),
        )
    }

    fn temp_scenario(name: &str, text: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gdlog-cli-unit");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(name);
        std::fs::write(&path, text).expect("write scenario");
        path
    }

    #[test]
    fn help_version_and_usage_errors() {
        let (code, out, _) = run_cli(&["--help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        assert!(out.contains("serve"), "{out}");
        let (code, out, _) = run_cli(&["--version"]);
        assert_eq!(code, 0);
        assert!(out.starts_with("gdlog "));
        let (code, _, err) = run_cli(&["--frobnicate"]);
        assert_eq!(code, 2);
        assert!(err.contains("unknown flag"));
    }

    #[test]
    fn run_reports_the_coin_program() {
        let path = temp_scenario(
            "coin_unit.gdl",
            "-> Coin(Flip<0.5>).\nCoin(0) -> false.\nCoin(1), not Aux1 -> Aux2.\nCoin(1), not Aux2 -> Aux1.\n",
        );
        let (code, out, err) =
            run_cli(&[path.to_str().unwrap(), "--query", "Coin(1)", "--top", "4"]);
        assert_eq!(code, 0, "stderr: {err}");
        assert!(out.contains("P(stable model exists) = 1/2"), "{out}");
        assert!(
            out.contains("query Coin(1): brave 1/2, cautious 1/2"),
            "{out}"
        );

        let (code, json_out, _) = run_cli(&[path.to_str().unwrap(), "--json"]);
        assert_eq!(code, 0);
        assert!(json_out.contains("\"p_stable\""));
        assert!(json_out.contains("\"text\": \"1/2\""));
    }

    #[test]
    fn strategy_auto_matches_flat_output() {
        let path = temp_scenario("auto_unit.gdl", "-> Coin(Flip<0.5>).\nCoin(0) -> false.\n");
        let (code, flat, _) = run_cli(&[path.to_str().unwrap(), "--json"]);
        assert_eq!(code, 0);
        let (code, auto, _) = run_cli(&[path.to_str().unwrap(), "--json", "--strategy", "auto"]);
        assert_eq!(code, 0);
        // The single-Δ-trigger certificate routes `auto` to the flat solve.
        assert_eq!(flat, auto);
        assert!(flat.contains("\"analysis\": \"flat\""), "{flat}");
    }

    #[test]
    fn missing_file_and_bad_atom_are_reported() {
        let (code, _, err) = run_cli(&["/nonexistent/nope.gdl"]);
        assert_eq!(code, 1);
        assert!(err.contains("cannot read"));

        let path = temp_scenario("atom_unit.gdl", "-> Coin(Flip<0.5>).\n");
        let (code, _, err) = run_cli(&[path.to_str().unwrap(), "--query", "lower(1)"]);
        assert_eq!(code, 1);
        assert!(err.contains("invalid ground atom"), "{err}");
    }

    #[test]
    fn check_and_fmt_work() {
        let path = temp_scenario(
            "fmt_unit.gdl",
            "% comment\nA(x),not B(x)->C(x).  Edge(1,2).\nA(x),B(x)->false.\n",
        );
        let (code, out, _) = run_cli(&["check", path.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert!(out.contains("rules"), "{out}");

        let (code, out, _) = run_cli(&["fmt", path.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("A(x), not B(x) -> C(x).\n"), "{out}");
        assert!(out.contains("A(x), B(x) -> false.\n"), "{out}");
        assert!(out.contains("Edge(1, 2).\n"), "{out}");
    }

    #[test]
    fn parse_errors_render_carets() {
        let path = temp_scenario("diag_unit.gdl", "A(x) -> B(x)\n");
        let (code, _, err) = run_cli(&[path.to_str().unwrap()]);
        assert_eq!(code, 1);
        assert!(err.starts_with("error: "), "{err}");
        assert!(err.contains("-->"), "{err}");
        assert!(err.contains('^'), "{err}");
    }
}

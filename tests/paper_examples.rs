//! Cross-crate integration tests: the paper's worked examples evaluated
//! end-to-end through the parser, the translation, both grounders, the chase,
//! the stable-model engine and the probability layer.

use gdlog::core::{
    as_good_as, bckov_output, coin_program, dime_quarter_program, enumerate_outcomes,
    isomorphic_to_bckov, network_resilience_program, ChaseBudget, GrounderChoice, OutputSpace,
    Pipeline, Program, SigmaPi, SimpleGrounder, TriggerOrder,
};
use gdlog::parser::{parse_program, pretty_program};
use gdlog::prelude::*;
use gdlog_engine::StableModelLimits;
use std::sync::Arc;

fn clique_db(n: i64) -> Database {
    let mut db = Database::new();
    for i in 1..=n {
        db.insert_fact("Router", [Const::Int(i)]);
        for j in 1..=n {
            if i != j {
                db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
            }
        }
    }
    db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
    db
}

#[test]
fn example_3_10_from_surface_syntax() {
    let source = r#"
        Infected(x, 1), Connected(x, y) -> Infected(y, Flip<0.1>[x, y]).
        Router(x), not Infected(x, 1) -> Uninfected(x).
        Uninfected(x), Uninfected(y), Connected(x, y) -> false.
        Router(1). Router(2). Router(3).
        Connected(1, 2). Connected(2, 1). Connected(1, 3).
        Connected(3, 1). Connected(2, 3). Connected(3, 2).
        Infected(1, 1).
    "#;
    let (program, db) = parse_program(source).unwrap();
    let space = Pipeline::new(&program, &db).unwrap().solve().unwrap();
    assert_eq!(space.has_stable_model_probability(), Prob::ratio(19, 100));
    assert_eq!(space.residual_mass(), Prob::ZERO);
    assert!(!space.is_truncated());
}

#[test]
fn parsed_and_programmatic_programs_agree() {
    let programmatic = network_resilience_program(0.1);
    let (parsed, _) = parse_program(&pretty_program(&programmatic)).unwrap();
    let db = clique_db(3);
    let a = Pipeline::new(&programmatic, &db).unwrap().solve().unwrap();
    let b = Pipeline::new(&parsed, &db).unwrap().solve().unwrap();
    assert_eq!(
        a.has_stable_model_probability(),
        b.has_stable_model_probability()
    );
    assert_eq!(a.outcome_count(), b.outcome_count());
}

#[test]
fn coin_program_events_match_section_3() {
    let space = Pipeline::new(&coin_program(), &Database::new())
        .unwrap()
        .solve()
        .unwrap();
    assert_eq!(space.outcome_count(), 2);
    assert_eq!(space.event_count(), 2);
    assert_eq!(space.has_stable_model_probability(), Prob::ratio(1, 2));
    // The tails event contains exactly the two stable models
    // {Coin(1), Aux1, …} and {Coin(1), Aux2, …} described in the paper.
    let tails_events: Vec<_> = space
        .outcomes()
        .iter()
        .filter(|(_, k)| !k.is_empty())
        .collect();
    assert_eq!(tails_events.len(), 1);
    assert_eq!(tails_events[0].1.model_count(), 2);
}

#[test]
fn dime_quarter_appendix_e_with_both_grounders() {
    let program = dime_quarter_program();
    let mut db = Database::new();
    db.insert_fact("Dime", [Const::Int(1)]);
    db.insert_fact("Dime", [Const::Int(2)]);
    db.insert_fact("Quarter", [Const::Int(3)]);

    let perfect = Pipeline::with_grounder(&program, &db, GrounderChoice::Perfect)
        .unwrap()
        .solve()
        .unwrap();
    let simple = Pipeline::with_grounder(&program, &db, GrounderChoice::Simple)
        .unwrap()
        .solve()
        .unwrap();

    // The perfect grounder needs fewer possible outcomes (5 vs 8) but the
    // induced distribution over sets of stable models is the same, and it is
    // as good as the simple one (Theorem 5.3).
    assert_eq!(perfect.outcome_count(), 5);
    assert_eq!(simple.outcome_count(), 8);
    assert!(as_good_as(&perfect, &simple));

    let some_tail = GroundAtom::make("SomeDimeTail", vec![]);
    assert_eq!(perfect.cautious_probability(&some_tail), Prob::ratio(3, 4));
    assert_eq!(simple.cautious_probability(&some_tail), Prob::ratio(3, 4));
}

#[test]
fn theorem_c4_holds_for_the_positive_fragment() {
    let positive = Program::new(network_resilience_program(0.2).rules()[..1].to_vec());
    let db = clique_db(3);
    let sigma = Arc::new(SigmaPi::translate(&positive, &db).unwrap());
    let grounder = SimpleGrounder::new(sigma.clone());
    let chase =
        enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
    let bckov = bckov_output(&sigma, &ChaseBudget::default()).unwrap();
    assert!(isomorphic_to_bckov(&grounder, &chase, &bckov, &StableModelLimits::default()).unwrap());
}

#[test]
fn builder_parser_and_pipeline_compose() {
    // Build a small program with the fluent builder, print it, re-parse it,
    // and evaluate both variants.
    let program = gdlog::core::ProgramBuilder::new()
        .rule(|r| {
            r.body("Machine", vec![gdlog::data::Term::var("m")])
                .head_with_delta(
                    "Fails",
                    vec![gdlog::data::Term::var("m")],
                    "Flip",
                    vec![gdlog::data::Term::Const(Const::real(0.25).unwrap())],
                    vec![gdlog::data::Term::var("m")],
                )
        })
        .rule(|r| {
            r.body("Machine", vec![gdlog::data::Term::var("m")])
                .not_body(
                    "Fails",
                    vec![gdlog::data::Term::var("m"), gdlog::data::Term::int(1)],
                )
                .head("Healthy", vec![gdlog::data::Term::var("m")])
        })
        .build()
        .unwrap();
    let mut db = Database::new();
    db.insert_fact("Machine", [Const::Int(1)]);
    db.insert_fact("Machine", [Const::Int(2)]);

    let direct = Pipeline::with_grounder(&program, &db, GrounderChoice::Auto)
        .unwrap()
        .solve()
        .unwrap();
    let (reparsed, _) = parse_program(&pretty_program(&program)).unwrap();
    let roundtripped = Pipeline::with_grounder(&reparsed, &db, GrounderChoice::Auto)
        .unwrap()
        .solve()
        .unwrap();

    // P(both machines healthy) = 0.75².
    let healthy1 = GroundAtom::make("Healthy", vec![Const::Int(1)]);
    let healthy2 = GroundAtom::make("Healthy", vec![Const::Int(2)]);
    let both = direct.probability_where(|k| k.cautious(&healthy1) && k.cautious(&healthy2));
    assert_eq!(both, Prob::ratio(9, 16));
    let both_rt =
        roundtripped.probability_where(|k| k.cautious(&healthy1) && k.cautious(&healthy2));
    assert_eq!(both, both_rt);
}

#[test]
fn output_space_type_is_reusable_across_crates() {
    // Make sure the facade exposes enough to write generic helpers.
    fn total_mass(space: &OutputSpace) -> f64 {
        space.explored_mass().add(&space.residual_mass()).to_f64()
    }
    let space = Pipeline::new(&coin_program(), &Database::new())
        .unwrap()
        .solve()
        .unwrap();
    assert!((total_mass(&space) - 1.0).abs() < 1e-9);
}

//! End-to-end tests of the resident server: the scenario corpus replayed
//! over the wire protocol must be **byte-identical** to the CLI's `--json`
//! goldens, warm responses byte-identical to cold ones, concurrent sessions
//! with distinct programs must not cross-contaminate, and admission-control
//! overload must be a prompt typed rejection, never a hang.

mod common;

use common::{directive_args, manifest_dir, scenario_files};
use gdlog_server::{start, ClientError, ErrorCode, ServeClient, ServeConfig};

fn ephemeral() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServeConfig::default()
    }
}

/// The tentpole acceptance check: every corpus scenario, opened as a server
/// session and queried with its own `%! args:` flags, answers with exactly
/// the bytes of its `scenarios/golden/<name>.json` — one schema, one
/// renderer, whether the query arrives via `gdlog run --json` or the wire.
/// Re-querying the warm session answers byte-identically to the cold query.
#[test]
fn corpus_replayed_over_the_wire_is_byte_identical_to_goldens() {
    let files = scenario_files();
    assert!(!files.is_empty());
    let mut server = start(&ephemeral()).expect("bind ephemeral server");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    for (name, path) in &files {
        let source = std::fs::read_to_string(path).expect("scenario readable");
        let rel = format!("scenarios/{name}.gdl");
        let golden_path = manifest_dir()
            .join("scenarios/golden")
            .join(format!("{name}.json"));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|_| panic!("{name}: missing golden {}", golden_path.display()));

        client
            .open(&rel, &source)
            .unwrap_or_else(|e| panic!("{name}: open failed: {e}"));
        let args = directive_args(&source);
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let cold = client
            .query(&rel, &argv)
            .unwrap_or_else(|e| panic!("{name}: query failed: {e}"));
        assert_eq!(cold, golden, "{name}: wire response drifted from golden");
        let warm = client
            .query(&rel, &argv)
            .unwrap_or_else(|e| panic!("{name}: warm query failed: {e}"));
        assert_eq!(warm, cold, "{name}: warm response != cold response");
    }

    // The whole corpus went through the compiled-program cache: one compile
    // per scenario, one solve-cache hit per warm re-query.
    let stats = client.stats().expect("stats");
    assert!(
        stats.contains(&format!("\"programs\": {}", files.len())),
        "{stats}"
    );
    server.stop();
}

/// Distinct programs opened under the *same label* on different connections
/// are different sessions over different compiled programs — answers never
/// bleed across connections, even under concurrent querying.
#[test]
fn concurrent_sessions_with_distinct_programs_do_not_cross_contaminate() {
    let biases = ["0.125", "0.5", "0.875"];
    let programs: Vec<String> = biases
        .iter()
        .map(|b| format!("-> Coin(Flip<{b}>).\n"))
        .collect();

    let mut server = start(&ephemeral()).expect("bind ephemeral server");
    let addr = server.local_addr();

    // Expected responses, computed serially first (also primes the compiled
    // cache, so the concurrent phase exercises the warm path).
    let expected: Vec<String> = programs
        .iter()
        .map(|source| {
            let mut c = ServeClient::connect(addr).expect("connect");
            c.open("prog.gdl", source).expect("open");
            c.query("prog.gdl", &["--query", "Coin(1)"]).expect("query")
        })
        .collect();
    for (i, a) in expected.iter().enumerate() {
        for b in &expected[i + 1..] {
            assert_ne!(a, b, "biases must yield distinguishable responses");
        }
    }

    std::thread::scope(|scope| {
        for (source, want) in programs.iter().zip(&expected) {
            scope.spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                c.open("prog.gdl", source).expect("open");
                for _ in 0..8 {
                    let got = c.query("prog.gdl", &["--query", "Coin(1)"]).expect("query");
                    assert_eq!(&got, want, "response from another session leaked in");
                }
            });
        }
    });
    server.stop();
}

/// Overload is a prompt, well-formed `ERR overloaded` response — not a hang,
/// and not a poisoned connection: once a solve slot frees up, the same
/// session answers normally.
#[test]
fn admission_rejection_is_a_typed_error_not_a_hang() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_inflight: 1,
        max_queued: 0,
        ..ServeConfig::default()
    };
    let mut server = start(&config).expect("bind ephemeral server");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client
        .open("coin.gdl", "-> Coin(Flip<0.5>).\nCoin(0) -> false.\n")
        .expect("open");

    // Pin the only solve slot, exactly as a long-running query would hold it.
    let permit = server.sessions().admission().acquire().expect("pin slot");
    let err = client
        .query("coin.gdl", &["--query", "Coin(1)"])
        .expect_err("queue is full, query must be rejected");
    match err {
        ClientError::Serve(e) => {
            assert_eq!(e.code, ErrorCode::Overloaded);
            assert!(e.message.contains("overloaded"), "{}", e.message);
        }
        other => panic!("expected a typed protocol error, got {other}"),
    }

    // Releasing the slot heals the server; the same connection answers.
    drop(permit);
    let json = client
        .query("coin.gdl", &["--query", "Coin(1)"])
        .expect("query after slot freed");
    assert!(json.contains("\"p_stable\""), "{json}");

    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"rejected\": 1"), "{stats}");
    server.stop();
}

//! Smoke tests: every example under `examples/` must run to completion, and
//! the `gdlog` binary must evaluate every scenario in `scenarios/`.
//!
//! These invoke `cargo run --release` as a subprocess (the same artifacts
//! tier-1 CI builds just before testing, so the nested cargo call is a cheap
//! cache hit). A failing example or scenario — panic, nonzero exit, missing
//! target — fails the test with its captured output.

use std::process::Command;

const EXAMPLES: [&str; 4] = [
    "quickstart",
    "coin_games",
    "network_resilience",
    "grounder_comparison",
];

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let output = Command::new(cargo)
        .args(["run", "--release", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_example_runs() {
    run_example(EXAMPLES[0]);
}

#[test]
fn coin_games_example_runs() {
    run_example(EXAMPLES[1]);
}

#[test]
fn network_resilience_example_runs() {
    run_example(EXAMPLES[2]);
}

#[test]
fn grounder_comparison_example_runs() {
    run_example(EXAMPLES[3]);
}

/// Run the `gdlog` binary with the given arguments, returning stdout.
fn run_gdlog(args: &[&str]) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let output = Command::new(cargo)
        .args(["run", "--release", "--quiet", "--bin", "gdlog", "--"])
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for gdlog {args:?}: {e}"));
    assert!(
        output.status.success(),
        "gdlog {args:?} failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8(output.stdout).expect("gdlog stdout is UTF-8")
}

/// Every scenario in the corpus runs to exit 0 through the real binary with
/// a smoke budget (the corpus test exercises the full directive flags; this
/// covers the binary entry point itself).
#[test]
fn gdlog_binary_runs_every_scenario() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let mut count = 0;
    for entry in std::fs::read_dir(dir).expect("scenarios/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("gdl") {
            continue;
        }
        let path = path.to_str().expect("utf-8 path");
        let text = run_gdlog(&[
            "run",
            path,
            "--grounder",
            "auto",
            "--max-outcomes",
            "64",
            "--max-branching",
            "8",
            "--top",
            "3",
        ]);
        assert!(text.contains("outcomes"), "no summary in output:\n{text}");
        count += 1;
    }
    assert!(count >= 8, "expected >= 8 scenarios, ran {count}");
}

/// `--json` output from the binary is well-formed enough to trust in CI
/// pipelines: balanced braces, the promised top-level keys, no thread count.
#[test]
fn gdlog_binary_emits_json() {
    let text = run_gdlog(&[
        "run",
        "scenarios/coin.gdl",
        "--json",
        "--query",
        "Coin(1)",
        "--top",
        "2",
    ]);
    assert!(text.starts_with("{\n"), "not a JSON object:\n{text}");
    assert!(text.ends_with("}\n"), "unterminated JSON:\n{text}");
    let depth: i64 = text
        .chars()
        .map(|c| match c {
            '{' | '[' => 1,
            '}' | ']' => -1,
            _ => 0,
        })
        .sum();
    assert_eq!(depth, 0, "unbalanced brackets:\n{text}");
    for key in [
        "\"source\"",
        "\"fingerprint\"",
        "\"p_stable\"",
        "\"queries\"",
        "\"top_events\"",
    ] {
        assert!(text.contains(key), "missing {key} in:\n{text}");
    }
    assert!(!text.contains("\"threads\""), "threads leaked into JSON");
}

/// The `check` and `fmt` subcommands succeed on a scenario; `fmt` output
/// re-parses (full round-tripping is property-tested in `properties.rs`).
#[test]
fn gdlog_binary_checks_and_formats() {
    let checked = run_gdlog(&["check", "scenarios/dime_quarter.gdl"]);
    assert!(checked.contains("stratified: yes"), "{checked}");
    let formatted = run_gdlog(&["fmt", "scenarios/game_chain.gdl"]);
    gdlog_parser::parse_source(&formatted)
        .unwrap_or_else(|e| panic!("fmt output does not re-parse: {e}\n{formatted}"));
}

//! Smoke tests: every example under `examples/` must run to completion.
//!
//! These invoke `cargo run --release --example <name>` as a subprocess (the
//! same artifacts tier-1 CI builds just before testing, so the nested cargo
//! call is a cheap cache hit). A failing example — panic, nonzero exit,
//! missing example target — fails the test with its captured output.

use std::process::Command;

const EXAMPLES: [&str; 4] = [
    "quickstart",
    "coin_games",
    "network_resilience",
    "grounder_comparison",
];

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let output = Command::new(cargo)
        .args(["run", "--release", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_example_runs() {
    run_example(EXAMPLES[0]);
}

#[test]
fn coin_games_example_runs() {
    run_example(EXAMPLES[1]);
}

#[test]
fn network_resilience_example_runs() {
    run_example(EXAMPLES[2]);
}

#[test]
fn grounder_comparison_example_runs() {
    run_example(EXAMPLES[3]);
}

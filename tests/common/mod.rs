//! Helpers shared by the end-to-end test binaries (`scenario_corpus`,
//! `server_sessions`): scenario discovery and `%!` directive extraction.
//!
//! No interning choreography is needed: [`gdlog_data::Symbol`] orders
//! lexicographically, so canonical output (event keys, fingerprints, golden
//! JSON) is independent of which test interned which name first.
#![allow(dead_code)] // each test binary uses a subset

use std::path::PathBuf;

/// The repository root (scenario paths in goldens are relative to it).
pub fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Every `scenarios/*.gdl` file, sorted by stem.
pub fn scenario_files() -> Vec<(String, PathBuf)> {
    let dir = manifest_dir().join("scenarios");
    let mut files: Vec<(String, PathBuf)> = std::fs::read_dir(&dir)
        .expect("scenarios/ directory exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            let stem = path.file_stem()?.to_str()?.to_owned();
            (path.extension()?.to_str()? == "gdl").then_some((stem, path))
        })
        .collect();
    files.sort();
    files
}

/// The `%! args:` flags of a scenario, in order.
pub fn directive_args(source: &str) -> Vec<String> {
    let mut args = Vec::new();
    for line in source.lines() {
        let Some(rest) = line.trim().strip_prefix("%!") else {
            continue;
        };
        if let Some(arg_text) = rest.trim().strip_prefix("args:") {
            args.extend(arg_text.split_whitespace().map(str::to_owned));
        }
    }
    args
}

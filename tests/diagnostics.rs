//! Golden tests for CLI diagnostics: malformed `.gdl` input must produce
//! the exact rendered error — message, `line:column` locus, source excerpt
//! and caret — with exit code 1.

use std::path::PathBuf;

/// Write a scenario under the test-scoped temp dir and return its path.
fn temp_scenario(name: &str, contents: &str) -> String {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("gdlog-diagnostics");
    std::fs::create_dir_all(&dir).expect("mkdir tmp");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write scenario");
    path.to_str().expect("utf-8 path").to_owned()
}

/// Run the CLI in-process, returning (exit code, stdout, stderr).
fn run_cli(args: &[&str]) -> (i32, String, String) {
    let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    let mut out = Vec::new();
    let mut err = Vec::new();
    let code = gdlog::cli::main_with(&argv, &mut out, &mut err);
    (
        code,
        String::from_utf8(out).expect("stdout utf-8"),
        String::from_utf8(err).expect("stderr utf-8"),
    )
}

#[test]
fn unterminated_string_points_at_the_opening_quote() {
    let path = temp_scenario("unterminated.gdl", "A(1).\nB(x) -> C(\"oops).\n");
    let (code, out, err) = run_cli(&["run", &path]);
    assert_eq!(code, 1);
    assert_eq!(out, "");
    assert_eq!(
        err,
        format!(
            "error: unterminated string literal\n\
             \x20 --> {path}:2:11\n\
             \x20  |\n\
             \x202 | B(x) -> C(\"oops).\n\
             \x20  |           ^\n"
        )
    );
}

#[test]
fn arity_conflict_points_at_the_later_rule() {
    let path = temp_scenario(
        "arity.gdl",
        "Edge(1, 2).\nEdge(x, y) -> Path(x, y).\nPath(x) -> Reach(x).\n",
    );
    let (code, _, err) = run_cli(&["run", &path]);
    assert_eq!(code, 1);
    assert_eq!(
        err,
        format!(
            "error: data error: predicate Path used with arity 1 but previously \
             declared with arity 2\n\
             \x20 --> {path}:3:1\n\
             \x20  |\n\
             \x203 | Path(x) -> Reach(x).\n\
             \x20  | ^\n"
        )
    );
}

#[test]
fn unsafe_head_variable_points_at_its_occurrence() {
    let path = temp_scenario("unsafe.gdl", "A(1).\nA(x) -> B(y).\n");
    let (code, _, err) = run_cli(&["run", &path]);
    assert_eq!(code, 1);
    assert_eq!(
        err,
        format!(
            "error: invalid program: unsafe variable y in head B(y) of rule \
             `A(x) -> B(y).`\n\
             \x20 --> {path}:2:11\n\
             \x20  |\n\
             \x202 | A(x) -> B(y).\n\
             \x20  |           ^\n"
        )
    );
}

#[test]
fn unstratifiable_negation_under_perfect_grounder_points_at_the_negative_literal() {
    let path = temp_scenario(
        "unstrat.gdl",
        "A(1).\nA(x), not Q(x) -> P(x).\nA(x), not P(x) -> Q(x).\n",
    );
    let (code, _, err) = run_cli(&["run", &path, "--grounder", "perfect"]);
    assert_eq!(code, 1);
    assert_eq!(
        err,
        format!(
            "error: not stratified: negative edge P/1 -> Q/1 lies on a cycle\n\
             \x20 --> {path}:3:7\n\
             \x20  |\n\
             \x203 | A(x), not P(x) -> Q(x).\n\
             \x20  |       ^\n"
        )
    );
}

#[test]
fn error_at_end_of_input_clamps_the_caret_to_the_last_line() {
    // The parser reports a missing `.` at the end-of-input position (line 2
    // of a 1-line file); the renderer must still show an excerpt.
    let path = temp_scenario("eof.gdl", "A(x) -> B(x)\n");
    let (code, _, err) = run_cli(&["run", &path]);
    assert_eq!(code, 1);
    assert!(
        err.contains(&format!("--> {path}:2:1")),
        "locus missing in:\n{err}"
    );
    assert!(
        err.contains("1 | A(x) -> B(x)"),
        "clamped excerpt missing in:\n{err}"
    );
    assert!(err.trim_end().ends_with('^'), "caret missing in:\n{err}");
}

#[test]
fn check_subcommand_renders_the_same_diagnostics() {
    let path = temp_scenario("check_unsafe.gdl", "A(1).\nA(x) -> B(y).\n");
    let (code, out, err) = run_cli(&["check", &path]);
    assert_eq!(code, 1);
    assert_eq!(out, "");
    assert!(err.starts_with("error: invalid program: unsafe variable y"));
    assert!(err.contains(&format!("--> {path}:2:11")));
}

#[test]
fn check_collects_every_diagnostic_in_span_order() {
    // Two independent validation errors; the old behavior stopped at the
    // first. Both must render, ordered by source position.
    let path = temp_scenario("check_multi.gdl", "A(1).\nA(x) -> B(y).\nA(x) -> C(z).\n");
    let (code, _, err) = run_cli(&["check", &path]);
    assert_eq!(code, 1);
    let y = err.find("unsafe variable y").expect("first diagnostic");
    let z = err.find("unsafe variable z").expect("second diagnostic");
    assert!(y < z, "diagnostics out of span order:\n{err}");
    assert!(err.contains(&format!("--> {path}:2:11")), "{err}");
    assert!(err.contains(&format!("--> {path}:3:11")), "{err}");
}

#[test]
fn lint_flags_an_unsafe_program_with_exit_one() {
    let (code, out, err) = run_cli(&["lint", "scenarios/bad/unsafe_var.gdl"]);
    assert_eq!(code, 1);
    assert!(
        err.contains("error: invalid program: unsafe variable y"),
        "{err}"
    );
    assert!(err.contains("scenarios/bad/unsafe_var.gdl:2:11"), "{err}");
    assert!(err.contains('^'), "{err}");
    assert!(out.contains("1 errors"), "{out}");
}

#[test]
fn lint_warns_on_weak_acyclicity_violations() {
    let (code, out, err) = run_cli(&["lint", "scenarios/bad/weakly_cyclic.gdl"]);
    // A chase-termination warning alone exits 0 …
    assert_eq!(code, 0, "{err}");
    assert!(err.contains("warning: chase may not terminate"), "{err}");
    assert!(err.contains("[chase-may-not-terminate]"), "{err}");
    // … and the diagnostic points at the Δ-term on the recursive rule.
    assert!(err.contains("scenarios/bad/weakly_cyclic.gdl:3:"), "{err}");
    assert!(out.contains("warnings"), "{out}");

    // `--deny-warnings` upgrades the exit code.
    let (code, _, _) = run_cli(&["lint", "scenarios/bad/weakly_cyclic.gdl", "--deny-warnings"]);
    assert_eq!(code, 1);
}

#[test]
fn lint_notes_unstratifiable_negation_without_failing() {
    let (code, out, err) = run_cli(&["lint", "scenarios/bad/not_stratified.gdl"]);
    assert_eq!(code, 0, "{err}");
    assert!(err.contains("note: not stratified"), "{err}");
    // The note anchors at the `not` token of the offending literal.
    assert!(
        err.contains("scenarios/bad/not_stratified.gdl:3:7"),
        "{err}"
    );
    assert!(out.contains("notes"), "{out}");

    // Notes survive even `--deny-warnings`: the program is still runnable
    // under the simple grounder.
    let (code, _, _) = run_cli(&[
        "lint",
        "scenarios/bad/not_stratified.gdl",
        "--deny-warnings",
    ]);
    assert_eq!(code, 0);
}

#[test]
fn lint_json_report_is_deterministic_and_structured() {
    let (code, out, _) = run_cli(&["lint", "scenarios/bad/weakly_cyclic.gdl", "--json"]);
    assert_eq!(code, 0);
    assert!(out.contains("\"findings\""), "{out}");
    assert!(
        out.contains("\"code\": \"chase-may-not-terminate\""),
        "{out}"
    );
    assert!(out.contains("\"severity\": \"warning\""), "{out}");
    assert!(out.contains("\"static_components\""), "{out}");
    // Byte-identical across invocations.
    let (_, again, _) = run_cli(&["lint", "scenarios/bad/weakly_cyclic.gdl", "--json"]);
    assert_eq!(out, again);
}

#[test]
fn check_with_lint_runs_the_full_pass() {
    let (code, out, err) = run_cli(&["check", "scenarios/bad/weakly_cyclic.gdl", "--lint"]);
    assert_eq!(code, 0, "{err}");
    assert!(err.contains("warning: chase may not terminate"), "{err}");
    assert!(out.contains("rules"), "{out}");
    assert!(out.contains("warnings"), "{out}");
    let (code, _, _) = run_cli(&[
        "check",
        "scenarios/bad/weakly_cyclic.gdl",
        "--lint",
        "--deny-warnings",
    ]);
    assert_eq!(code, 1);
}

#[test]
fn usage_errors_exit_2_with_the_usage_text() {
    let (code, out, err) = run_cli(&["run", "a.gdl", "--grounder", "quantum"]);
    assert_eq!(code, 2);
    assert_eq!(out, "");
    assert!(err.starts_with("error: "));
    assert!(err.contains("USAGE:"), "usage text missing in:\n{err}");
}

#[test]
fn missing_file_is_a_plain_error_without_a_caret() {
    let (code, _, err) = run_cli(&["run", "/nonexistent/nowhere.gdl"]);
    assert_eq!(code, 1);
    assert!(err.starts_with("error: cannot read /nonexistent/nowhere.gdl"));
    assert!(!err.contains('^'));
}

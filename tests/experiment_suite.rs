//! Smoke test for the experiment harness: the fast experiments must all
//! report "ok" (i.e. match the paper) when run through the public API of
//! `gdlog-bench`. The heavier experiments (E4, E6, E9, E10) are exercised by
//! the `experiments` binary and the Criterion benches.

use gdlog_bench::{run_experiment, ExperimentOutcome};

fn assert_ok(outcome: &ExperimentOutcome) {
    assert!(
        outcome.all_ok(),
        "experiment {} disagrees with the paper:\n{}",
        outcome.id,
        outcome.report
    );
}

#[test]
fn e1_network_resilience_matches_example_3_10() {
    assert_ok(&run_experiment("e1"));
}

#[test]
fn e2_coin_program_matches_section_3() {
    assert_ok(&run_experiment("e2"));
}

#[test]
fn e3_dime_quarter_matches_appendix_e() {
    assert_ok(&run_experiment("e3"));
}

#[test]
fn e5_bckov_isomorphism_holds() {
    assert_ok(&run_experiment("e5"));
}

#[test]
fn e7_grounder_properties_hold() {
    assert_ok(&run_experiment("e7"));
}

#[test]
fn e8_figure_1_dependency_graph() {
    assert_ok(&run_experiment("e8"));
}

#[test]
fn e9_perfect_grounder_produces_fewer_rules() {
    assert_ok(&run_experiment("e9"));
}

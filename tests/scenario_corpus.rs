//! The scenario corpus: every `scenarios/*.gdl` file is an end-to-end test.
//!
//! Each scenario carries `%!` directive comments:
//!
//! ```text
//! %! args: --grounder perfect --query SomeDimeTail --top 8
//! %! expect: outcomes = 5
//! %! expect: p_stable = 1
//! %! expect: brave SomeDimeTail = 3/4
//! ```
//!
//! The harness runs the file through the CLI's `execute_run` (the same code
//! path as the `gdlog` binary), checks every `expect:` line, and compares
//! the `--json` report byte-for-byte against `scenarios/golden/<name>.json`.
//! Regenerate goldens with `GDLOG_REGEN_GOLDEN=1 cargo test --test
//! scenario_corpus`.

mod common;

use common::{manifest_dir, scenario_files};
use gdlog::cli::args::{parse_args, Command};
use gdlog::cli::execute_run;
use gdlog::cli::report::ScenarioReport;
use gdlog_core::{dime_quarter_program, GrounderChoice, Pipeline};
use gdlog_data::Database;

#[derive(Debug)]
enum Expect {
    Outcomes(u128),
    Events(u128),
    PStable(String),
    Residual(String),
    Truncated(bool),
    Brave(String, String),
    Cautious(String, String),
}

struct Directives {
    args: Vec<String>,
    expects: Vec<Expect>,
}

/// Normalise an atom written in directive syntax (`QuarterTail(3,1)`) to the
/// display form used in reports (`QuarterTail(3, 1)`).
fn canonical_atom(text: &str) -> String {
    let db = gdlog_parser::parse_database(&format!("{text}."))
        .unwrap_or_else(|e| panic!("directive atom `{text}` does not parse: {e}"));
    let atoms = db.canonical_atoms();
    assert_eq!(
        atoms.len(),
        1,
        "directive atom `{text}` is not a single atom"
    );
    atoms[0].to_string()
}

fn parse_directives(source: &str, name: &str) -> Directives {
    let mut args = Vec::new();
    let mut expects = Vec::new();
    for line in source.lines() {
        let Some(rest) = line.trim().strip_prefix("%!") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(arg_text) = rest.strip_prefix("args:") {
            args.extend(arg_text.split_whitespace().map(str::to_owned));
        } else if let Some(expect_text) = rest.strip_prefix("expect:") {
            let (lhs, rhs) = expect_text
                .split_once('=')
                .unwrap_or_else(|| panic!("{name}: malformed expect `{expect_text}`"));
            let (lhs, rhs) = (lhs.trim(), rhs.trim().to_owned());
            let expect = match lhs {
                "outcomes" => Expect::Outcomes(rhs.parse().expect("outcome count")),
                "events" => Expect::Events(rhs.parse().expect("event count")),
                "p_stable" => Expect::PStable(rhs),
                "residual" => Expect::Residual(rhs),
                "truncated" => Expect::Truncated(rhs == "yes"),
                other => match other.split_once(' ') {
                    Some(("brave", atom)) => Expect::Brave(canonical_atom(atom), rhs),
                    Some(("cautious", atom)) => Expect::Cautious(canonical_atom(atom), rhs),
                    _ => panic!("{name}: unknown expect key `{other}`"),
                },
            };
            expects.push(expect);
        } else {
            panic!("{name}: unknown directive `%! {rest}`");
        }
    }
    Directives { args, expects }
}

/// Run a scenario through the CLI code path and return its report.
fn run_scenario(path: &str, extra_args: &[String]) -> ScenarioReport {
    let mut argv = vec![path.to_owned()];
    argv.extend(extra_args.iter().cloned());
    let command = parse_args(&argv).unwrap_or_else(|e| panic!("{path}: bad args: {e}"));
    let Command::Run(options) = command else {
        panic!("{path}: directives must describe a run");
    };
    execute_run(&options).unwrap_or_else(|e| panic!("{path}: run failed:\n{e}"))
}

fn find_query<'a>(
    report: &'a ScenarioReport,
    atom: &str,
    name: &str,
) -> &'a gdlog::cli::report::QueryReport {
    report
        .queries
        .iter()
        .find(|q| q.atom == atom)
        .unwrap_or_else(|| {
            panic!("{name}: expect references `{atom}` but it is not in `--query` args")
        })
}

fn check_expectations(name: &str, report: &ScenarioReport, expects: &[Expect]) {
    assert!(
        !expects.is_empty(),
        "{name}: every scenario must declare at least one `%! expect:` line"
    );
    for expect in expects {
        match expect {
            Expect::Outcomes(n) => assert_eq!(report.outcomes, *n, "{name}: outcomes"),
            Expect::Events(n) => assert_eq!(report.events, *n, "{name}: events"),
            Expect::PStable(p) => {
                assert_eq!(&report.p_stable.to_string(), p, "{name}: p_stable")
            }
            Expect::Residual(p) => {
                assert_eq!(
                    &report.residual_mass.to_string(),
                    p,
                    "{name}: residual mass"
                )
            }
            Expect::Truncated(t) => assert_eq!(report.truncated, *t, "{name}: truncated"),
            Expect::Brave(atom, p) => {
                let q = find_query(report, atom, name);
                assert_eq!(&q.brave.to_string(), p, "{name}: brave {atom}");
            }
            Expect::Cautious(atom, p) => {
                let q = find_query(report, atom, name);
                assert_eq!(&q.cautious.to_string(), p, "{name}: cautious {atom}");
            }
        }
    }
}

fn check_golden(name: &str, report: &ScenarioReport) {
    let golden_path = manifest_dir()
        .join("scenarios/golden")
        .join(format!("{name}.json"));
    let rendered = report.render_json();
    if std::env::var_os("GDLOG_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
        panic!(
            "{name}: missing golden {}; regenerate with GDLOG_REGEN_GOLDEN=1",
            golden_path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "{name}: JSON report drifted from its golden; if intentional, \
         regenerate with GDLOG_REGEN_GOLDEN=1 cargo test --test scenario_corpus"
    );
}

#[test]
fn corpus_has_the_promised_breadth() {
    let files = scenario_files();
    assert!(
        files.len() >= 8,
        "the corpus promises at least 8 scenarios, found {}",
        files.len()
    );
    // At least two stable-negation game programs ride along.
    let games = files
        .iter()
        .filter(|(stem, _)| stem.starts_with("game_"))
        .count();
    assert!(games >= 2, "expected >= 2 game_* scenarios, found {games}");
}

#[test]
fn every_scenario_runs_and_matches_its_directives_and_golden() {
    let files = scenario_files();
    assert!(!files.is_empty());
    for (name, path) in &files {
        let source = std::fs::read_to_string(path).expect("scenario readable");
        let directives = parse_directives(&source, name);
        // Use a repo-relative, forward-slash path so goldens are portable.
        let rel = format!("scenarios/{name}.gdl");
        let report = run_scenario(&rel, &directives.args);
        check_expectations(name, &report, &directives.expects);
        check_golden(name, &report);
    }
}

/// The acceptance check of the PR: the CLI on `dime_quarter.gdl` reproduces
/// the builder-API pipeline on `dime_quarter_program()` byte for byte —
/// same fingerprint, same event listing, same probabilities.
#[test]
fn dime_quarter_cli_matches_the_builder_api_byte_for_byte() {
    let source = std::fs::read_to_string(manifest_dir().join("scenarios/dime_quarter.gdl"))
        .expect("scenario readable");
    let directives = parse_directives(&source, "dime_quarter");
    let report = run_scenario("scenarios/dime_quarter.gdl", &directives.args);

    // Builder-API path: the programmatic program over the same database.
    let program = dime_quarter_program();
    let mut db = Database::new();
    db.insert_fact("Dime", [1i64]);
    db.insert_fact("Dime", [2i64]);
    db.insert_fact("Quarter", [3i64]);
    let pipeline =
        Pipeline::with_grounder(&program, &db, GrounderChoice::Perfect).expect("pipeline");
    let space = pipeline.solve().expect("solve");

    assert_eq!(report.fingerprint, space.fingerprint(), "fingerprint");
    assert_eq!(
        report.p_stable.to_string(),
        space.has_stable_model_probability().to_string()
    );
    assert_eq!(report.outcomes, space.outcome_count() as u128);
    assert_eq!(report.events, space.event_count() as u128);

    // The --top 8 listing equals the full builder event listing, in order,
    // with identical display text for keys and masses.
    let builder_events: Vec<(String, String)> = space
        .events_by_mass()
        .into_iter()
        .map(|(key, mass)| (key.to_string(), mass.to_string()))
        .collect();
    let cli_events: Vec<(String, String)> = report
        .top_events
        .iter()
        .map(|e| (e.key.clone(), e.mass.to_string()))
        .collect();
    assert_eq!(cli_events, builder_events);

    // Query probabilities agree with direct OutputSpace queries.
    let some_dime = gdlog_data::GroundAtom::make("SomeDimeTail", vec![]);
    let quarter_tail = gdlog_data::GroundAtom::make(
        "QuarterTail",
        vec![gdlog_data::Const::Int(3), gdlog_data::Const::Int(1)],
    );
    let by_atom = |a: &str| {
        report
            .queries
            .iter()
            .find(|q| q.atom == a)
            .expect("query present")
    };
    assert_eq!(
        by_atom("SomeDimeTail").brave.to_string(),
        space.brave_probability(&some_dime).to_string()
    );
    assert_eq!(
        by_atom("QuarterTail(3, 1)").cautious.to_string(),
        space.cautious_probability(&quarter_tail).to_string()
    );
}

/// The JSON golden format must not depend on the worker-thread count: the
/// same scenario evaluated at 1 and at 4 threads renders identically (this
/// is what lets CI diff goldens across `GDLOG_THREADS` matrix legs).
#[test]
fn json_report_is_thread_count_invariant() {
    let run = |threads: &str| {
        let args = [
            "--threads",
            threads,
            "--query",
            "Uninfected(2)",
            "--top",
            "4",
        ];
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        run_scenario("scenarios/network_resilience.gdl", &args)
    };
    let one = run("1");
    let four = run("4");
    assert_eq!(one.threads, 1);
    assert_eq!(four.threads, 4);
    assert!(!one.render_json().contains("threads"));
    assert_eq!(one.render_json(), four.render_json());
}

/// The factored pipeline behind `--factored` answers exactly what the flat
/// path answers: running `coin_farm.gdl` both ways yields the same masses,
/// query probabilities and top-event listing — the flat report differs only
/// in its factor count and chase bookkeeping.
#[test]
fn factored_scenario_matches_the_flat_path() {
    let source = std::fs::read_to_string(manifest_dir().join("scenarios/coin_farm.gdl"))
        .expect("scenario readable");
    let directives = parse_directives(&source, "coin_farm");
    let factored = run_scenario("scenarios/coin_farm.gdl", &directives.args);
    let flat_args: Vec<String> = directives
        .args
        .iter()
        .filter(|a| *a != "--factored")
        .cloned()
        .collect();
    let flat = run_scenario("scenarios/coin_farm.gdl", &flat_args);

    assert_eq!(factored.factors, 4, "one factor per coin");
    assert_eq!(flat.factors, 1);
    assert_eq!(factored.outcomes, flat.outcomes);
    assert_eq!(factored.events, flat.events);
    assert_eq!(factored.p_stable.to_string(), flat.p_stable.to_string());
    assert_eq!(
        factored.explored_mass.to_string(),
        flat.explored_mass.to_string()
    );
    assert_eq!(
        factored.residual_mass.to_string(),
        flat.residual_mass.to_string()
    );
    let probs = |r: &ScenarioReport| -> Vec<String> {
        r.queries
            .iter()
            .chain(&r.marginals)
            .flat_map(|q| {
                [
                    q.atom.clone(),
                    q.brave.to_string(),
                    q.cautious.to_string(),
                    format!("{:?}", q.brave_given),
                    format!("{:?}", q.cautious_given),
                ]
            })
            .collect()
    };
    assert_eq!(probs(&factored), probs(&flat));
    let events = |r: &ScenarioReport| -> Vec<(String, String)> {
        r.top_events
            .iter()
            .map(|e| (e.key.clone(), e.mass.to_string()))
            .collect()
    };
    assert_eq!(events(&factored), events(&flat));
}

/// Every corpus scenario must lint clean — no errors, no warnings (notes
/// are fine: game programs legitimately use unstratified negation) — and
/// its JSON lint report must match `scenarios/golden/<name>.lint.json`
/// byte for byte. Regenerate with GDLOG_REGEN_GOLDEN=1.
#[test]
fn every_scenario_lints_clean_and_matches_its_lint_golden() {
    for (name, path) in scenario_files() {
        let source = std::fs::read_to_string(&path).expect("scenario readable");
        let rel = format!("scenarios/{name}.gdl");
        let outcome = gdlog::cli::lint::lint_source(&rel, &source)
            .unwrap_or_else(|e| panic!("{name}: lint failed to parse:\n{e}"));
        // The corpus is gated under `--deny-warnings`.
        assert_eq!(
            outcome.exit_code(true),
            0,
            "{name}: corpus scenarios must be lint-clean, found {:#?}",
            outcome.findings
        );
        assert!(
            outcome.static_components.is_some(),
            "{name}: valid scenarios must report their static component count"
        );

        let golden_path = manifest_dir()
            .join("scenarios/golden")
            .join(format!("{name}.lint.json"));
        let rendered = outcome.render_json(&rel);
        if std::env::var_os("GDLOG_REGEN_GOLDEN").is_some() {
            std::fs::write(&golden_path, &rendered).expect("write lint golden");
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "{name}: missing lint golden {}; regenerate with GDLOG_REGEN_GOLDEN=1",
                golden_path.display()
            )
        });
        assert_eq!(
            rendered, golden,
            "{name}: lint report drifted from its golden; if intentional, \
             regenerate with GDLOG_REGEN_GOLDEN=1 cargo test --test scenario_corpus"
        );
    }
}

/// The static-independence showcase: `coin.gdl` runs `--factored` and its
/// only Δ-rule is ground, so the grounding-free analysis alone must settle
/// the decomposition (`analysis: static`, no saturation); `coin_farm.gdl`
/// needs the dynamic Δ-analysis (`analysis: dynamic`).
#[test]
fn static_analysis_verdicts_appear_in_reports() {
    let coin_src = std::fs::read_to_string(manifest_dir().join("scenarios/coin.gdl"))
        .expect("scenario readable");
    let coin_args = parse_directives(&coin_src, "coin").args;
    assert!(coin_args.iter().any(|a| a == "--factored"));
    let coin = run_scenario("scenarios/coin.gdl", &coin_args);
    assert_eq!(coin.analysis, "static", "coin: ground Δ-rule");

    let farm_src = std::fs::read_to_string(manifest_dir().join("scenarios/coin_farm.gdl"))
        .expect("scenario readable");
    let farm_args = parse_directives(&farm_src, "coin_farm").args;
    let farm = run_scenario("scenarios/coin_farm.gdl", &farm_args);
    assert_eq!(farm.analysis, "dynamic", "coin_farm: saturation ran");
    assert_eq!(farm.factors, 4);
}

/// `gdlog fmt` must carry `%!` directive lines through verbatim — they are
/// executable corpus metadata, not prose comments — and its output must
/// still parse to the same program.
#[test]
fn fmt_preserves_scenario_directives() {
    for (name, path) in scenario_files() {
        let source = std::fs::read_to_string(&path).expect("scenario readable");
        let rel = format!("scenarios/{name}.gdl");
        let argv = vec!["fmt".to_owned(), rel.clone()];
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = gdlog::cli::main_with(&argv, &mut out, &mut err);
        assert_eq!(
            code,
            0,
            "{name}: fmt failed: {}",
            String::from_utf8_lossy(&err)
        );
        let formatted = String::from_utf8(out).expect("fmt output utf-8");

        let directive_lines = |text: &str| -> Vec<String> {
            text.lines()
                .map(str::trim_start)
                .filter(|l| l.starts_with("%!"))
                .map(str::to_owned)
                .collect()
        };
        assert_eq!(
            directive_lines(&source),
            directive_lines(&formatted),
            "{name}: fmt dropped or reordered `%!` directives"
        );

        // And the reformatted text is still the same scenario.
        let (p1, d1) = gdlog_parser::parse_program(&source).expect("source parses");
        let (p2, d2) = gdlog_parser::parse_program(&formatted)
            .unwrap_or_else(|e| panic!("{name}: formatted output failed to parse: {e}"));
        assert_eq!(p1.to_string(), p2.to_string(), "{name}");
        assert_eq!(d1, d2, "{name}");
    }
}

/// Scenario sources themselves round-trip through `gdlog fmt`'s printer:
/// formatting then re-parsing yields the same program and database.
#[test]
fn scenarios_survive_reformatting() {
    for (name, path) in scenario_files() {
        let source = std::fs::read_to_string(&path).expect("scenario readable");
        let (program, db) = gdlog_parser::parse_program(&source)
            .unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let printed = format!(
            "{}\n{}",
            gdlog_parser::pretty_program(&program),
            gdlog_parser::pretty_database(&db)
        );
        let (program2, db2) = gdlog_parser::parse_program(&printed)
            .unwrap_or_else(|e| panic!("{name}: reprint failed to parse: {e}"));
        assert_eq!(program.to_string(), program2.to_string(), "{name}");
        assert_eq!(db, db2, "{name}");
    }
}

#[test]
fn corpus_readme_mentions_every_scenario() {
    let readme = std::fs::read_to_string(manifest_dir().join("scenarios/README.md"))
        .expect("scenarios/README.md exists");
    for (name, _) in scenario_files() {
        assert!(
            readme.contains(&format!("{name}.gdl")),
            "scenarios/README.md does not mention {name}.gdl"
        );
    }
}

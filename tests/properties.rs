//! Property-based tests of the invariants claimed by the paper, across
//! randomly generated inputs (kept small so the suite stays fast).
//!
//! The suite is deterministic in CI: the proptest runner uses a fixed RNG
//! seed, so a red run reproduces locally with no extra flags. CI clamps the
//! per-test case counts below via `PROPTEST_CASES` (which takes precedence
//! over `with_cases`); set `PROPTEST_RNG_SEED` to explore a fresh stream.
//! See `tests/README.md`.

use gdlog::core::{
    coin_program, dime_quarter_program, enumerate_outcomes, enumerate_outcomes_with,
    network_resilience_program, AtrRule, AtrSet, ChaseBudget, Executor, Grounder, ModelSetCache,
    ModelSetKey, MonteCarlo, NaivePerfectGrounder, NaiveSimpleGrounder, OutputSpace,
    PerfectGrounder, Pipeline, SigmaPi, SimpleGrounder, StaticComponents, TriggerOrder,
};
use gdlog::prelude::*;
use gdlog_engine::{
    is_stable_model, least_model, naive_stable_models, reduct, stable_models, well_founded,
    GroundProgram, GroundRule, StableModelLimits,
};
use gdlog_prob::Rational;
use proptest::prelude::*;
use std::sync::Arc;

fn rational() -> impl Strategy<Value = Rational> {
    (-1000i128..1000, 1i128..1000).prop_map(|(n, d)| Rational::new(n, d).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rational arithmetic is commutative/associative and multiplication
    /// distributes over addition (within the checked range).
    #[test]
    fn rational_field_laws(a in rational(), b in rational(), c in rational()) {
        let ab = a.checked_add(&b).unwrap();
        let ba = b.checked_add(&a).unwrap();
        prop_assert_eq!(ab, ba);
        let amulb = a.checked_mul(&b).unwrap();
        let bmula = b.checked_mul(&a).unwrap();
        prop_assert_eq!(amulb, bmula);
        let left = a.checked_mul(&b.checked_add(&c).unwrap()).unwrap();
        let right = a
            .checked_mul(&b)
            .unwrap()
            .checked_add(&a.checked_mul(&c).unwrap())
            .unwrap();
        prop_assert_eq!(left, right);
    }

    /// Probabilities from short decimals stay exact and round-trip to f64.
    #[test]
    fn prob_from_decimal_is_exact(n in 0u32..=1000u32) {
        let v = n as f64 / 1000.0;
        let p = Prob::from_f64(v);
        prop_assert!(p.is_exact());
        prop_assert!((p.to_f64() - v).abs() < 1e-12);
    }
}

/// A strategy for small random ground normal programs over 0-ary atoms.
fn ground_program() -> impl Strategy<Value = GroundProgram> {
    let atom_names = prop::sample::select(vec!["A", "B", "C", "D", "E"]);
    let rule = (
        atom_names.clone(),
        prop::collection::vec(atom_names.clone(), 0..2),
        prop::collection::vec(atom_names, 0..2),
    )
        .prop_map(|(head, pos, neg)| {
            GroundRule::new(
                GroundAtom::make(head, vec![]),
                pos.into_iter()
                    .map(|n| GroundAtom::make(n, vec![]))
                    .collect(),
                neg.into_iter()
                    .map(|n| GroundAtom::make(n, vec![]))
                    .collect(),
            )
        });
    prop::collection::vec(rule, 1..8).prop_map(GroundProgram::from_rules)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every enumerated stable model really is one (least model of its
    /// reduct) and is a classical model of the program; atoms decided by the
    /// well-founded model are respected.
    #[test]
    fn stable_models_satisfy_their_definition(program in ground_program()) {
        let models = stable_models(&program, &StableModelLimits::default()).unwrap();
        let wf = well_founded(&program);
        for m in &models {
            prop_assert!(is_stable_model(&program, m));
            prop_assert!(program.is_model(m));
            prop_assert_eq!(&least_model(&reduct(&program, m)), m);
            for t in wf.true_atoms.iter() {
                prop_assert!(m.contains(t));
            }
            for f in wf.false_atoms.iter() {
                prop_assert!(!m.contains(f));
            }
        }
        // Distinct stable models are incomparable (anti-chain property).
        for (i, m1) in models.iter().enumerate() {
            for m2 in models.iter().skip(i + 1) {
                prop_assert!(!m1.is_subset_of(m2) && !m2.is_subset_of(m1));
            }
        }
    }
}

/// Random small network databases for chase-level properties.
fn network_db_strategy() -> impl Strategy<Value = Database> {
    (2usize..4, prop::collection::vec(any::<bool>(), 6)).prop_map(|(n, edge_bits)| {
        let mut db = Database::new();
        let mut bit = 0usize;
        for i in 1..=n as i64 {
            db.insert_fact("Router", [Const::Int(i)]);
        }
        for i in 1..=n as i64 {
            for j in (i + 1)..=n as i64 {
                if edge_bits[bit % edge_bits.len()] {
                    db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
                    db.insert_fact("Connected", [Const::Int(j), Const::Int(i)]);
                }
                bit += 1;
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        db
    })
}

/// Drive a pseudo-random chase path on `grounder`: at each step one open
/// trigger (chosen by the next byte of `picks`) is resolved with outcome 0 or
/// 1 (the byte's high bit). Stops when terminal or when `picks` runs out, so
/// both partial and terminal configurations are produced.
fn random_atr(grounder: &dyn Grounder, picks: &[u8]) -> AtrSet {
    let mut atr = AtrSet::new();
    let mut grounding = grounder.ground_node(&atr);
    for &pick in picks {
        let triggers = grounder.triggers(&atr, grounding.rules());
        if triggers.is_empty() {
            break;
        }
        let trigger = triggers[pick as usize % triggers.len()].clone();
        let outcome = Const::Int(i64::from(pick >> 7));
        let rule = AtrRule::new(grounder.sigma(), trigger, outcome).unwrap();
        let parent_atr = atr.clone();
        atr.insert(rule).unwrap();
        grounding = grounder.ground_from(&atr, &parent_atr, &mut grounding);
        // The incremental grounding must agree with grounding from scratch
        // at every step of the descent — for the perfect grounder this
        // exercises the stratum cursor, and the resumption state itself must
        // agree with the from-scratch one.
        let scratch = grounder.ground_node(&atr);
        assert_eq!(
            grounding.rules().canonical_rules(),
            scratch.rules().canonical_rules(),
            "incremental ground_from diverged from ground"
        );
        assert_eq!(
            grounding.cursor(),
            scratch.cursor(),
            "incremental stratum cursor diverged from ground"
        );
    }
    atr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The semi-naive simple grounder is extensionally identical to the
    /// retained naive oracle (`gdlog::core::naive`) on random network
    /// databases, random infection probabilities and random (partial or
    /// terminal) AtR sets — and the incremental `ground_from` used by the
    /// chase agrees with grounding from scratch.
    #[test]
    fn seminaive_simple_grounder_matches_the_naive_oracle(
        db in network_db_strategy(),
        p in 1u32..=9u32,
        picks in prop::collection::vec(any::<u8>(), 0..8),
    ) {
        let program = network_resilience_program(p as f64 / 10.0);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let grounder = SimpleGrounder::new(sigma);
        let atr = random_atr(&grounder, &picks);
        let seminaive = grounder.ground(&atr);
        let naive = grounder.ground_naive(&atr);
        prop_assert_eq!(seminaive.canonical_rules(), naive.canonical_rules());
    }

    /// The same equivalence for the perfect grounder on the stratified
    /// dime/quarter family with random batch sizes. `random_atr` also
    /// asserts per descent step that the stratum-cursor `ground_from` agrees
    /// with grounding from scratch.
    #[test]
    fn seminaive_perfect_grounder_matches_the_naive_oracle(
        dimes in 1i64..=3,
        quarters in 1i64..=2,
        picks in prop::collection::vec(any::<u8>(), 0..8),
    ) {
        let mut db = Database::new();
        for d in 1..=dimes {
            db.insert_fact("Dime", [Const::Int(d)]);
        }
        for q in 1..=quarters {
            db.insert_fact("Quarter", [Const::Int(dimes + q)]);
        }
        let sigma = Arc::new(SigmaPi::translate(&dime_quarter_program(), &db).unwrap());
        let grounder = PerfectGrounder::new(sigma).unwrap();
        let atr = random_atr(&grounder, &picks);
        let seminaive = grounder.ground(&atr);
        let naive = grounder.ground_naive(&atr);
        prop_assert_eq!(seminaive.canonical_rules(), naive.canonical_rules());
    }

    /// Stratum-cursor resumption on a second stratified family: random coin
    /// chains (probabilistic tosses below a negation stratum). Every descent
    /// step of `random_atr` checks `ground_from` ≡ `ground` and equal
    /// cursors; the terminal grounding must also match the naive oracle.
    #[test]
    fn perfect_ground_from_matches_ground_on_random_coin_chains(
        coins in 1usize..=4,
        p in 1u32..=9u32,
        picks in prop::collection::vec(any::<u8>(), 0..10),
    ) {
        let (program, db) = gdlog_bench::workloads::coin_chain(coins, p as f64 / 10.0);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let grounder = PerfectGrounder::new(sigma).unwrap();
        let atr = random_atr(&grounder, &picks);
        let seminaive = grounder.ground(&atr);
        let naive = grounder.ground_naive(&atr);
        prop_assert_eq!(seminaive.canonical_rules(), naive.canonical_rules());
    }
}

/// A canonical fingerprint of a chase result: for every outcome its choice
/// set, probability and the canonical listings of all its stable models.
fn outcome_fingerprints(
    grounder: &dyn Grounder,
    limits: &StableModelLimits,
) -> Vec<(String, String, Vec<Vec<GroundAtom>>)> {
    let result = enumerate_outcomes(grounder, &ChaseBudget::default(), TriggerOrder::First)
        .expect("enumeration succeeds");
    let mut keys: Vec<(String, String, Vec<Vec<GroundAtom>>)> = result
        .outcomes
        .iter()
        .map(|o| {
            let mut models: Vec<Vec<GroundAtom>> = o
                .stable_models(limits)
                .expect("stable model search succeeds")
                .iter()
                .map(|m| m.canonical_atoms())
                .collect();
            models.sort();
            (o.atr.to_string(), o.probability.to_string(), models)
        })
        .collect();
    keys.sort();
    keys
}

/// Satellite check for the refactor: on the paper's worked examples the full
/// pipeline — outcomes, probabilities *and stable-model sets* — is unchanged
/// when grounding semi-naively instead of naively.
#[test]
fn paper_examples_stable_models_unchanged_by_seminaive_grounding() {
    let limits = StableModelLimits::default();

    // Example 3.1/3.6/3.10: network resilience on the 3-clique (simple).
    let mut db = Database::new();
    for i in 1..=3i64 {
        db.insert_fact("Router", [Const::Int(i)]);
        for j in 1..=3i64 {
            if i != j {
                db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
            }
        }
    }
    db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
    let sigma = Arc::new(SigmaPi::translate(&network_resilience_program(0.1), &db).unwrap());
    let seminaive = SimpleGrounder::new(sigma);
    let naive = NaiveSimpleGrounder(seminaive.clone());
    assert_eq!(
        outcome_fingerprints(&seminaive, &limits),
        outcome_fingerprints(&naive, &limits)
    );

    // Section 3's coin program (simple grounder; one outcome has no stable
    // model, the other two).
    let sigma = Arc::new(SigmaPi::translate(&coin_program(), &Database::new()).unwrap());
    let seminaive = SimpleGrounder::new(sigma);
    let naive = NaiveSimpleGrounder(seminaive.clone());
    assert_eq!(
        outcome_fingerprints(&seminaive, &limits),
        outcome_fingerprints(&naive, &limits)
    );

    // Appendix E: dimes and quarters (perfect grounder).
    let mut db = Database::new();
    db.insert_fact("Dime", [Const::Int(1)]);
    db.insert_fact("Dime", [Const::Int(2)]);
    db.insert_fact("Quarter", [Const::Int(3)]);
    let sigma = Arc::new(SigmaPi::translate(&dime_quarter_program(), &db).unwrap());
    let seminaive = PerfectGrounder::new(sigma).unwrap();
    let naive = NaivePerfectGrounder(seminaive.clone());
    assert_eq!(
        outcome_fingerprints(&seminaive, &limits),
        outcome_fingerprints(&naive, &limits)
    );
}

/// Satellite check for the incremental chase: snapshot-shared enumeration
/// (each child extends a structural snapshot of its parent's grounding; the
/// perfect grounder resumes at its stratum cursor) yields identical
/// outcomes, probabilities *and residual mass* to regrounding every node
/// from scratch, on the paper examples — under the default budget and under
/// a truncating one.
#[test]
fn chase_enumeration_is_unchanged_by_incremental_snapshot_sharing() {
    // The same stripped-hooks baseline the chase benchmarks measure against.
    use gdlog_bench::workloads::Reground;
    let compare = |grounder: &dyn Grounder| {
        let scratch = Reground(grounder);
        for budget in [
            ChaseBudget::default(),
            ChaseBudget {
                max_outcomes: 3,
                max_depth: 4,
                max_branching: 2,
                min_path_probability: 0.0,
            },
        ] {
            let a = enumerate_outcomes(grounder, &budget, TriggerOrder::First).unwrap();
            let b = enumerate_outcomes(&scratch, &budget, TriggerOrder::First).unwrap();
            let canon = |r: &gdlog::core::ChaseResult| {
                let mut v: Vec<String> = r
                    .outcomes
                    .iter()
                    .map(|o| format!("{}@{}", o.atr, o.probability))
                    .collect();
                v.sort();
                v
            };
            assert_eq!(
                canon(&a),
                canon(&b),
                "outcomes differ ({})",
                grounder.name()
            );
            assert_eq!(
                a.residual_mass.to_string(),
                b.residual_mass.to_string(),
                "residual mass differs ({})",
                grounder.name()
            );
            assert_eq!(a.truncated, b.truncated);
            assert_eq!(a.nodes_visited, b.nodes_visited);
        }
    };

    // Example 3.1/3.6/3.10: network resilience on the 3-clique (simple).
    let mut db = Database::new();
    for i in 1..=3i64 {
        db.insert_fact("Router", [Const::Int(i)]);
        for j in 1..=3i64 {
            if i != j {
                db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
            }
        }
    }
    db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
    let sigma = Arc::new(SigmaPi::translate(&network_resilience_program(0.1), &db).unwrap());
    compare(&SimpleGrounder::new(sigma));

    // Section 3's coin program (simple).
    let sigma = Arc::new(SigmaPi::translate(&coin_program(), &Database::new()).unwrap());
    compare(&SimpleGrounder::new(sigma));

    // Appendix E: dimes and quarters (perfect, stratum cursor).
    let mut db = Database::new();
    db.insert_fact("Dime", [Const::Int(1)]);
    db.insert_fact("Dime", [Const::Int(2)]);
    db.insert_fact("Quarter", [Const::Int(3)]);
    let sigma = Arc::new(SigmaPi::translate(&dime_quarter_program(), &db).unwrap());
    compare(&PerfectGrounder::new(sigma).unwrap());
}

/// The thread counts the parallel-equivalence properties sweep: sequential,
/// an odd count that never divides the branch fan-out evenly, and more
/// workers than any of the small workloads can saturate.
const THREAD_SWEEP: [usize; 3] = [1, 3, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite check for the parallel chase: on random coin-chain and
    /// network-ring programs, exploring the chase tree through a
    /// work-stealing pool yields **bit-identical** results to the
    /// sequential walk — same outcome list in the same order, same exact
    /// `Prob` masses, same residual, same truncation flag and same visited
    /// node count — for every thread count, under the default budget and
    /// under truncating ones (where the speculative walk must defer to the
    /// sequential replay).
    #[test]
    fn parallel_chase_equals_sequential_on_random_programs(
        coins in 1usize..=5,
        ring in 3usize..=4,
        p in 1u32..=9u32,
    ) {
        let (program, db) = gdlog_bench::workloads::coin_chain(coins, p as f64 / 10.0);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let chain = PerfectGrounder::new(sigma).unwrap();
        let db = gdlog_bench::workloads::network_database(
            ring,
            gdlog_bench::workloads::Topology::Ring,
        );
        let program = network_resilience_program(p as f64 / 10.0);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let net = SimpleGrounder::new(sigma);
        let grounders: [&dyn Grounder; 2] = [&chain, &net];

        let budgets = [
            ChaseBudget::default(),
            ChaseBudget { max_outcomes: 2, ..ChaseBudget::default() },
            ChaseBudget { max_outcomes: 7, max_depth: 3, max_branching: 2, min_path_probability: 0.0 },
        ];
        for grounder in grounders {
            for budget in &budgets {
                let sequential =
                    enumerate_outcomes(grounder, budget, TriggerOrder::First).unwrap();
                for threads in THREAD_SWEEP {
                    let executor = Executor::new(threads);
                    let parallel =
                        enumerate_outcomes_with(grounder, budget, TriggerOrder::First, &executor)
                            .unwrap();
                    // The shared strict definition of "bit-identical":
                    // outcome order, choice sets, exact probabilities,
                    // residual mass, truncation and node count.
                    let diff = sequential.diff(&parallel);
                    prop_assert!(
                        diff.is_none(),
                        "parallel result differs at {} threads: {:?}",
                        threads,
                        diff
                    );
                }
            }
        }
    }

    /// The Monte-Carlo companion: per-walk RNG streams derive from the root
    /// seed, so fanning the walks of `estimate` out to the pool reproduces
    /// the sequential hit/abandon tallies exactly, for every thread count.
    #[test]
    fn parallel_sampling_equals_sequential_on_random_programs(
        coins in 1usize..=5,
        ring in 3usize..=4,
        p in 1u32..=9u32,
        seed in 0u64..1000,
    ) {
        let (program, db) = gdlog_bench::workloads::coin_chain(coins, p as f64 / 10.0);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let chain = SimpleGrounder::new(sigma);
        let db = gdlog_bench::workloads::network_database(
            ring,
            gdlog_bench::workloads::Topology::Ring,
        );
        let program = network_resilience_program(p as f64 / 10.0);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let net = SimpleGrounder::new(sigma);
        let grounders: [&dyn Grounder; 2] = [&chain, &net];

        for grounder in grounders {
            // A tight trigger budget on the ring workload produces a mix of
            // finite and abandoned walks, so both tallies are exercised.
            for max_triggers in [3usize, 64] {
                let event = |outcome: &gdlog::core::PossibleOutcome| outcome.choice_count() % 2 == 0;
                let mut mc = MonteCarlo::new(grounder, max_triggers, seed);
                let sequential = mc.estimate(60, event).unwrap();
                for threads in THREAD_SWEEP {
                    let executor = Executor::new(threads);
                    let mut mc = MonteCarlo::new(grounder, max_triggers, seed)
                        .with_executor(&executor);
                    let parallel = mc.estimate(60, event).unwrap();
                    prop_assert_eq!(
                        sequential.estimate.mean,
                        parallel.estimate.mean,
                        "estimate differs at {} threads",
                        threads
                    );
                    prop_assert_eq!(sequential.abandoned, parallel.abandoned);
                    prop_assert_eq!(sequential.samples, parallel.samples);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 3.9 + Lemma 4.4 on random small networks: the explored mass
    /// plus the residual is exactly 1, the chase result does not depend on
    /// the trigger order, and every outcome label is functionally consistent
    /// (Lemma 4.3(1)) and distinct (4.3(2)).
    #[test]
    fn chase_invariants_on_random_networks(db in network_db_strategy(), p in 1u32..=9u32) {
        let program = network_resilience_program(p as f64 / 10.0);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let grounder = SimpleGrounder::new(sigma);
        let budget = ChaseBudget::default();

        let run = |order| enumerate_outcomes(&grounder, &budget, order).unwrap();
        let first = run(TriggerOrder::First);
        let last = run(TriggerOrder::Last);

        // Total probability mass is exactly one (all probabilities exact).
        prop_assert_eq!(first.total_mass(), Prob::ONE);

        // Order independence: same multiset of (choice set, probability).
        let canon = |r: &gdlog::core::ChaseResult| {
            let mut v: Vec<String> = r
                .outcomes
                .iter()
                .map(|o| format!("{}@{}", o.atr, o.probability))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(canon(&first), canon(&last));

        // Outcomes are pairwise distinct and terminal for the grounder.
        for (i, o1) in first.outcomes.iter().enumerate() {
            prop_assert!(grounder.is_terminal(&o1.atr));
            for o2 in first.outcomes.iter().skip(i + 1) {
                prop_assert!(o1.atr != o2.atr);
            }
        }
    }
}

/// A strategy for ground programs seeded with even/odd negative loops and
/// the paper's `Fail`/`Aux` constraint encoding, plus random linking rules —
/// the shapes on which the component-split propagating stable-model search
/// must agree with the retained naive enumerator.
fn looped_ground_program() -> impl Strategy<Value = GroundProgram> {
    let atom_names = prop::sample::select(vec!["A", "B", "C", "D", "E", "F"]);
    let rule = (
        atom_names.clone(),
        prop::collection::vec(atom_names.clone(), 0..3),
        prop::collection::vec(atom_names, 0..3),
    )
        .prop_map(|(head, pos, neg)| {
            GroundRule::new(
                GroundAtom::make(head, vec![]),
                pos.into_iter()
                    .map(|n| GroundAtom::make(n, vec![]))
                    .collect(),
                neg.into_iter()
                    .map(|n| GroundAtom::make(n, vec![]))
                    .collect(),
            )
        });
    let loops = prop::collection::vec((0usize..3, any::<bool>(), any::<bool>()), 0..3);
    (prop::collection::vec(rule, 0..8), loops).prop_map(|(rules, loops)| {
        let mut program = GroundProgram::from_rules(rules);
        for (i, even, constrain) in loops {
            let a = GroundAtom::make(&format!("L{i}a"), vec![]);
            let b = GroundAtom::make(&format!("L{i}b"), vec![]);
            if even {
                program.push(GroundRule::new(a.clone(), vec![], vec![b.clone()]));
                program.push(GroundRule::new(b.clone(), vec![], vec![a.clone()]));
            } else {
                program.push(GroundRule::new(a.clone(), vec![], vec![a.clone()]));
            }
            if constrain {
                // Constraint `L{i}a → ⊥` via the Fail/Aux odd loop.
                let fail = GroundAtom::make("Fail", vec![]);
                let aux = GroundAtom::make("Aux", vec![]);
                program.push(GroundRule::new(fail.clone(), vec![a.clone()], vec![]));
                program.push(GroundRule::new(aux.clone(), vec![fail], vec![aux.clone()]));
            }
        }
        program
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole equivalence: the component-split propagating search and the
    /// naive `2^k` enumerator agree on random ground programs with even and
    /// odd loops and constraints — identical canonical model lists under
    /// wide limits, identical `TooManyModels` behaviour under a tight model
    /// cap, and every reported model satisfies the fixpoint definition.
    #[test]
    fn scc_search_equals_naive_enumerator(program in looped_ground_program()) {
        let wide = StableModelLimits { max_branch_atoms: 64, max_models: 100_000 };
        let fast = stable_models(&program, &wide).unwrap();
        let naive = naive_stable_models(&program, &wide).unwrap();
        prop_assert_eq!(&fast, &naive);
        for m in &fast {
            prop_assert!(is_stable_model(&program, m));
            prop_assert_eq!(&least_model(&reduct(&program, m)), m);
        }

        let tight = StableModelLimits { max_branch_atoms: 64, max_models: 2 };
        prop_assert_eq!(
            stable_models(&program, &tight),
            naive_stable_models(&program, &tight)
        );
    }
}

// ---------------------------------------------------------------------------
// Surface-syntax round-trip: pretty-printing a random program and database
// and re-parsing the text reproduces the originals exactly. This is the
// contract the `gdlog fmt` subcommand and the scenario corpus rely on.
// ---------------------------------------------------------------------------

/// Variable pool for random rules.
const RT_VARS: [&str; 3] = ["x", "y", "z"];

/// Symbol pool: identifier-shaped names (printed `#name`), the reserved word
/// `fail` and a non-identifier name (both printed as quoted strings).
const RT_SYMS: [&str; 5] = ["alice", "bob", "n_1", "fail", "two words"];

/// Constants covering every surface shape: integers (incl. negative), reals
/// (incl. integral ones, printed `1.0`), booleans, and symbols.
fn surface_const() -> impl Strategy<Value = Const> {
    (
        0u8..4,
        -50i64..50,
        0u32..150,
        any::<bool>(),
        0usize..RT_SYMS.len(),
    )
        .prop_map(|(kind, i, r, b, s)| match kind {
            0 => Const::Int(i),
            1 => Const::Real(f64::from(r) / 100.0),
            2 => Const::Bool(b),
            _ => Const::sym(RT_SYMS[s]),
        })
}

/// A term ingredient: a selector byte (variable vs constant, and which
/// variable) plus a constant fallback.
type TermSpec = (u8, Const);

/// Materialize a positive-body term, recording any variable it introduces.
fn pos_term(spec: &TermSpec, used: &mut Vec<gdlog_data::Var>) -> gdlog_data::Term {
    let (sel, c) = spec;
    if *sel < 160 {
        let v = gdlog_data::Var::new(RT_VARS[*sel as usize % RT_VARS.len()]);
        if !used.contains(&v) {
            used.push(v);
        }
        gdlog_data::Term::Var(v)
    } else {
        gdlog_data::Term::Const(*c)
    }
}

/// Materialize a head or negative-body term; variables are drawn only from
/// those the positive body introduced, so every generated rule is safe.
fn safe_term(spec: &TermSpec, used: &[gdlog_data::Var]) -> gdlog_data::Term {
    let (sel, c) = spec;
    if !used.is_empty() && *sel < 160 {
        gdlog_data::Term::Var(used[*sel as usize % used.len()])
    } else {
        gdlog_data::Term::Const(*c)
    }
}

/// One head-argument recipe: a plain term or a Δ-term with a real-valued
/// parameter and a random event signature.
#[derive(Clone, Debug)]
enum HeadSpec {
    Term(TermSpec),
    Delta(&'static str, u32, Vec<TermSpec>),
}

fn term_ingredient() -> impl Strategy<Value = TermSpec> {
    (any::<u8>(), surface_const())
}

fn atom_ingredient() -> impl Strategy<Value = (&'static str, Vec<TermSpec>)> {
    (
        prop::sample::select(vec!["P", "Q", "R", "S"]),
        prop::collection::vec(term_ingredient(), 0..3),
    )
}

fn head_ingredient() -> impl Strategy<Value = HeadSpec> {
    (
        any::<u8>(),
        term_ingredient(),
        prop::sample::select(vec!["Flip", "Geometric"]),
        1u32..100,
        prop::collection::vec(term_ingredient(), 0..2),
    )
        .prop_map(|(sel, t, d, p, ev)| {
            // Plain terms three times out of four, Δ-terms otherwise.
            if sel % 4 < 3 {
                HeadSpec::Term(t)
            } else {
                HeadSpec::Delta(d, p, ev)
            }
        })
}

fn surface_rule() -> impl Strategy<Value = gdlog::core::Rule> {
    (
        prop::collection::vec(atom_ingredient(), 1..3),
        prop::collection::vec(atom_ingredient(), 0..2),
        prop::sample::select(vec!["H", "K"]),
        prop::collection::vec(head_ingredient(), 0..3),
    )
        .prop_map(|(pos_spec, neg_spec, head_pred, head_spec)| {
            let mut used = Vec::new();
            let pos: Vec<gdlog_data::Atom> = pos_spec
                .into_iter()
                .map(|(p, ts)| {
                    gdlog_data::Atom::make(p, ts.iter().map(|t| pos_term(t, &mut used)).collect())
                })
                .collect();
            let neg: Vec<gdlog_data::Atom> = neg_spec
                .into_iter()
                .map(|(p, ts)| {
                    gdlog_data::Atom::make(p, ts.iter().map(|t| safe_term(t, &used)).collect())
                })
                .collect();
            let head_args: Vec<gdlog::core::HeadTerm> = head_spec
                .into_iter()
                .map(|h| match h {
                    HeadSpec::Term(t) => gdlog::core::HeadTerm::Term(safe_term(&t, &used)),
                    HeadSpec::Delta(name, p, ev) => {
                        gdlog::core::HeadTerm::Delta(gdlog::core::DeltaTerm::new(
                            name,
                            vec![gdlog_data::Term::Const(Const::Real(f64::from(p) / 100.0))],
                            ev.iter().map(|t| safe_term(t, &used)).collect(),
                        ))
                    }
                })
                .collect();
            gdlog::core::Rule::new(pos, neg, gdlog::core::Head::make(head_pred, head_args))
        })
}

fn surface_db() -> impl Strategy<Value = Database> {
    prop::collection::vec(
        (
            prop::sample::select(vec!["F", "G", "Data"]),
            prop::collection::vec(surface_const(), 0..3),
        ),
        0..6,
    )
    .prop_map(|facts| {
        let mut db = Database::new();
        for (name, args) in facts {
            db.insert_fact(name, args);
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse_source(pretty_program(p) + pretty_database(db))` reproduces the
    /// original program and database exactly, over random safe rules (with
    /// Δ-terms, negation, every constant shape) and random fact databases.
    #[test]
    fn surface_syntax_round_trips(
        rules in prop::collection::vec(surface_rule(), 0..6),
        db in surface_db(),
    ) {
        let program = gdlog::core::Program::new(rules);
        let text = format!(
            "{}{}",
            gdlog_parser::pretty_program(&program),
            gdlog_parser::pretty_database(&db)
        );
        let parsed = gdlog_parser::parse_source(&text)
            .map_err(|e| TestCaseError::fail(format!("re-parse failed: {e}\n{text}")))?;
        let (program2, db2, _) = parsed.into_parts();
        prop_assert_eq!(program2, program, "program drifted through print+parse:\n{}", text);
        prop_assert_eq!(db2, db, "database drifted through print+parse:\n{}", text);
    }
}

/// One independent island of a planted program. Every predicate name AND
/// every Δ-term event tag carries the island index: a `Flip<p>[e…]` with
/// identical parameter and event signature names the *same* random variable
/// wherever it appears, so untagged same-shaped islands would be genuinely
/// correlated (and correctly merged by the analysis). With the tags,
/// distinct islands share no atoms and the chase-independence analysis must
/// recover (at least) one component per island. The shapes cover a single
/// coin with a derived consequence, a stable-negation game (two stable
/// models behind a flip), a small reachability cascade, and two coins
/// welded into one component by a zero-arity head — the coupling
/// `coin_chain` uses.
fn island_text(shape: u8, i: usize, p: u32) -> String {
    let p = f64::from(p) / 10.0;
    match shape % 4 {
        0 => format!(
            "CoinI{i}(x) -> TossI{i}(x, Flip<{p}>[{i}, x]).\n\
             TossI{i}(x, 1) -> TailsI{i}(x).\n\
             CoinI{i}(1).\n"
        ),
        1 => format!(
            "-> RichI{i}(Flip<{p}>[{i}]).\n\
             RichI{i}(1), not PassI{i} -> PlayI{i}.\n\
             RichI{i}(1), not PlayI{i} -> PassI{i}.\n\
             RichI{i}(0) -> IdleI{i}.\n"
        ),
        2 => format!(
            "SrcI{i}(x) -> ReachI{i}(x, 1).\n\
             ReachI{i}(x, 1), EdgeI{i}(x, y) -> ReachI{i}(y, Flip<{p}>[{i}, x, y]).\n\
             SrcI{i}(1).\nEdgeI{i}(1, 2).\nEdgeI{i}(1, 3).\nEdgeI{i}(2, 4).\n"
        ),
        _ => format!(
            "CoinI{i}(x) -> TossI{i}(x, Flip<{p}>[{i}, x]).\n\
             TossI{i}(x, 1) -> AnyTailI{i}.\n\
             CoinI{i}(1).\nCoinI{i}(2).\n"
        ),
    }
}

/// Order-insensitive canonical form of an event listing, so ties in mass
/// cannot make the comparison depend on either side's tie-breaking.
fn canon_events(events: &[(ModelSetKey, Prob)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = events
        .iter()
        .map(|(key, mass)| (key.to_string(), mass.to_string()))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tentpole equivalence for the factorized pipeline: on random programs
    /// planted with independent islands, `solve_factored` must agree with
    /// the flat enumeration *exactly* — same `P(sms ≠ ∅)`, explored and
    /// residual mass, outcome/event counts, per-event masses, per-atom brave
    /// and cautious probabilities, cross-island conjunctions and the full
    /// event listing (tie-normalized) — at every thread count of the sweep,
    /// cold and with a warm memo cache (the warm re-solve must add no
    /// misses). With two or more islands the analysis must actually factor.
    #[test]
    fn factored_solve_equals_flat_on_planted_islands(
        islands in prop::collection::vec((any::<u8>(), 1u32..=9), 1..4),
    ) {
        let text: String = islands
            .iter()
            .enumerate()
            .map(|(i, &(shape, p))| island_text(shape, i, p))
            .collect::<Vec<_>>()
            .join("\n");
        let (program, db) = gdlog_parser::parse_program(&text)
            .map_err(|e| TestCaseError::fail(format!("planted program failed to parse: {e}\n{text}")))?;

        // The flat oracle, solved once WITHOUT any memo cache.
        let oracle = Pipeline::new(&program, &db).unwrap();
        let chase = oracle.chase().unwrap();
        let flat = OutputSpace::from_chase(&chase, &StableModelLimits::default()).unwrap();
        let flat_events = flat.events_by_mass();
        let flat_canon = canon_events(&flat_events);

        // Probe atoms: a spread of atoms drawn from the flat stable models.
        let mut seen = std::collections::BTreeSet::new();
        for (key, _) in &flat_events {
            for model in key.models() {
                for atom in model {
                    seen.insert(atom.clone());
                }
            }
        }
        let stride = (seen.len() / 16).max(1);
        let probe: Vec<GroundAtom> = seen.iter().step_by(stride).cloned().collect();

        for threads in THREAD_SWEEP {
            let pipeline = Pipeline::new(&program, &db).unwrap().threads(threads);
            let cold = pipeline.solve_factored().unwrap();
            let stats_after_cold = pipeline.stable_cache_stats();
            let warm = pipeline.solve_factored().unwrap();
            // Everything the warm run solves was memoized by the cold run.
            prop_assert_eq!(
                pipeline.stable_cache_stats().misses,
                stats_after_cold.misses,
                "warm factored re-solve missed the memo cache at {} threads",
                threads
            );

            if islands.len() >= 2 {
                prop_assert!(cold.is_factored(), "{} islands did not factor", islands.len());
                prop_assert!(cold.factor_count() >= islands.len());
            }

            for solve in [&cold, &warm] {
                prop_assert_eq!(solve.combined_outcomes(), flat.outcome_count() as u128);
                prop_assert_eq!(solve.combined_events(), flat.event_count() as u128);
                prop_assert_eq!(
                    solve.has_stable_model_probability(),
                    flat.has_stable_model_probability()
                );
                prop_assert_eq!(solve.explored_mass(), flat.explored_mass());
                prop_assert_eq!(solve.residual_mass(), flat.residual_mass());
                prop_assert_eq!(solve.is_truncated(), flat.is_truncated());
                prop_assert_eq!(
                    canon_events(&solve.events_by_mass_top(flat_events.len())),
                    flat_canon.clone(),
                    "event listings diverged at {} threads\n{}",
                    threads,
                    text.clone()
                );
                for (key, mass) in &flat_events {
                    prop_assert_eq!(&solve.event_probability(key), mass);
                }
                for atom in &probe {
                    prop_assert_eq!(
                        solve.brave_probability(atom),
                        flat.brave_probability(atom),
                        "brave P({}) diverged at {} threads",
                        atom,
                        threads
                    );
                    prop_assert_eq!(
                        solve.cautious_probability(atom),
                        flat.cautious_probability(atom),
                        "cautious P({}) diverged at {} threads",
                        atom,
                        threads
                    );
                }
                // Cross-island conjunctions exercise the per-factor
                // grouping of `probability_*_all`.
                let conj: Vec<GroundAtom> = probe.iter().take(3).cloned().collect();
                prop_assert_eq!(
                    solve.probability_brave_all(&conj),
                    flat.probability_where(|k| conj.iter().all(|a| k.brave(a)))
                );
                prop_assert_eq!(
                    solve.probability_cautious_all(&conj),
                    flat.probability_where(|k| conj.iter().all(|a| k.cautious(a)))
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Soundness of the grounding-free independence prediction: the static
    /// predicate-level components ([`StaticComponents`]) over-approximate
    /// the dynamic saturation-based analysis — on planted island programs,
    /// every trigger-bearing component `Pipeline::factor_components`
    /// discovers has all its universe atoms (and all its triggers) inside
    /// exactly ONE static component, at every thread count. The dynamic
    /// analysis may refine (split) a static component at the ground level,
    /// but can never straddle two: a straddle would mean the predicate
    /// graph missed a connection the ground universe has, and the static
    /// seeding of the saturation would then be unsound. The trigger-free
    /// base factor is exempt — it deliberately merges every choice-free
    /// component into one deterministic factor.
    #[test]
    fn static_components_over_approximate_dynamic_factors(
        islands in prop::collection::vec((any::<u8>(), 1u32..=9), 1..4),
    ) {
        let text: String = islands
            .iter()
            .enumerate()
            .map(|(i, &(shape, p))| island_text(shape, i, p))
            .collect::<Vec<_>>()
            .join("\n");
        let (program, db) = gdlog_parser::parse_program(&text)
            .map_err(|e| TestCaseError::fail(format!("planted program failed to parse: {e}\n{text}")))?;

        for threads in [1usize, 8] {
            let pipeline = Pipeline::new(&program, &db).unwrap().threads(threads);
            let statics = StaticComponents::of_sigma(pipeline.sigma());
            let Some(components) = pipeline.factor_components().unwrap() else {
                // Flat fallback (fewer than two trigger-bearing components):
                // nothing to map, but the static certificate must not have
                // promised more than one trigger-bearing component either.
                continue;
            };
            for component in components.iter().filter(|c| !c.triggers.is_empty()) {
                let homes: std::collections::BTreeSet<usize> = component
                    .atoms
                    .iter()
                    .map(|atom| {
                        statics
                            .component_of(&atom.predicate)
                            .expect("every universe predicate occurs in the translated program")
                    })
                    .collect();
                prop_assert_eq!(
                    homes.len(),
                    1,
                    "a dynamic component straddles {} static components at {} threads\n{}",
                    homes.len(),
                    threads,
                    text.clone()
                );
            }
        }
    }
}

/// A program whose choices are all welded into one component (coin_chain's
/// zero-arity `SomeHeads` head couples every coin) must take the flat
/// fallback: `solve_factored` returns the `Flat` variant, byte-identical —
/// same fingerprint, same event listing — to `Pipeline::solve`.
#[test]
fn single_component_programs_fall_back_to_the_flat_path() {
    let (program, db) = gdlog_bench::workloads::coin_chain(3, 0.5);
    let pipeline = Pipeline::new(&program, &db).unwrap();
    assert_eq!(pipeline.factor_count().unwrap(), 1);
    let solve = pipeline.solve_factored().unwrap();
    assert!(!solve.is_factored());
    assert_eq!(solve.factor_count(), 1);
    let flat = pipeline.solve().unwrap();
    assert_eq!(solve.fingerprint(), flat.fingerprint());
    assert_eq!(
        solve.as_flat().expect("flat fallback").events_by_mass(),
        flat.events_by_mass()
    );
}

/// Satellite check for the parallel stable-model back-end: on every workload
/// of the stable benchmark suite, `OutputSpace::from_chase` must produce
/// bit-identical events and masses at 1, 2 and 8 threads, with and without a
/// (shared, progressively warming) memo cache.
#[test]
fn from_chase_events_bit_identical_across_thread_counts() {
    let limits = StableModelLimits::default();
    for workload in gdlog_bench::workloads::stable_workload_suite(false) {
        let chase = enumerate_outcomes(
            workload.grounder.as_ref(),
            &ChaseBudget::default(),
            TriggerOrder::First,
        )
        .unwrap();
        let baseline = OutputSpace::from_chase(&chase, &limits).unwrap();
        let cache = ModelSetCache::new();
        for threads in [1usize, 2, 8] {
            for cached in [false, true] {
                let space = OutputSpace::from_chase_with(
                    chase.clone(),
                    &limits,
                    &Executor::new(threads),
                    cached.then_some(&cache),
                )
                .unwrap();
                assert_eq!(
                    space.events_by_mass(),
                    baseline.events_by_mass(),
                    "{} events diverged at {threads} threads (cached: {cached})",
                    workload.name
                );
                assert_eq!(space.residual_mass(), baseline.residual_mass());
                for (got, want) in space.outcomes().iter().zip(baseline.outcomes()) {
                    assert_eq!(got.1, want.1, "{} per-outcome keys", workload.name);
                }
            }
        }
    }
}

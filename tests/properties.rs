//! Property-based tests of the invariants claimed by the paper, across
//! randomly generated inputs (kept small so the suite stays fast).
//!
//! The suite is deterministic in CI: the proptest runner uses a fixed RNG
//! seed, so a red run reproduces locally with no extra flags. CI clamps the
//! per-test case counts below via `PROPTEST_CASES` (which takes precedence
//! over `with_cases`); set `PROPTEST_RNG_SEED` to explore a fresh stream.
//! See `tests/README.md`.

use gdlog::core::{
    enumerate_outcomes, network_resilience_program, ChaseBudget, Grounder, SigmaPi, SimpleGrounder,
    TriggerOrder,
};
use gdlog::prelude::*;
use gdlog_engine::{
    is_stable_model, least_model, reduct, stable_models, well_founded, GroundProgram, GroundRule,
    StableModelLimits,
};
use gdlog_prob::Rational;
use proptest::prelude::*;
use std::sync::Arc;

fn rational() -> impl Strategy<Value = Rational> {
    (-1000i128..1000, 1i128..1000).prop_map(|(n, d)| Rational::new(n, d).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rational arithmetic is commutative/associative and multiplication
    /// distributes over addition (within the checked range).
    #[test]
    fn rational_field_laws(a in rational(), b in rational(), c in rational()) {
        let ab = a.checked_add(&b).unwrap();
        let ba = b.checked_add(&a).unwrap();
        prop_assert_eq!(ab, ba);
        let amulb = a.checked_mul(&b).unwrap();
        let bmula = b.checked_mul(&a).unwrap();
        prop_assert_eq!(amulb, bmula);
        let left = a.checked_mul(&b.checked_add(&c).unwrap()).unwrap();
        let right = a
            .checked_mul(&b)
            .unwrap()
            .checked_add(&a.checked_mul(&c).unwrap())
            .unwrap();
        prop_assert_eq!(left, right);
    }

    /// Probabilities from short decimals stay exact and round-trip to f64.
    #[test]
    fn prob_from_decimal_is_exact(n in 0u32..=1000u32) {
        let v = n as f64 / 1000.0;
        let p = Prob::from_f64(v);
        prop_assert!(p.is_exact());
        prop_assert!((p.to_f64() - v).abs() < 1e-12);
    }
}

/// A strategy for small random ground normal programs over 0-ary atoms.
fn ground_program() -> impl Strategy<Value = GroundProgram> {
    let atom_names = prop::sample::select(vec!["A", "B", "C", "D", "E"]);
    let rule = (
        atom_names.clone(),
        prop::collection::vec(atom_names.clone(), 0..2),
        prop::collection::vec(atom_names, 0..2),
    )
        .prop_map(|(head, pos, neg)| {
            GroundRule::new(
                GroundAtom::make(head, vec![]),
                pos.into_iter()
                    .map(|n| GroundAtom::make(n, vec![]))
                    .collect(),
                neg.into_iter()
                    .map(|n| GroundAtom::make(n, vec![]))
                    .collect(),
            )
        });
    prop::collection::vec(rule, 1..8).prop_map(GroundProgram::from_rules)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every enumerated stable model really is one (least model of its
    /// reduct) and is a classical model of the program; atoms decided by the
    /// well-founded model are respected.
    #[test]
    fn stable_models_satisfy_their_definition(program in ground_program()) {
        let models = stable_models(&program, &StableModelLimits::default()).unwrap();
        let wf = well_founded(&program);
        for m in &models {
            prop_assert!(is_stable_model(&program, m));
            prop_assert!(program.is_model(m));
            prop_assert_eq!(&least_model(&reduct(&program, m)), m);
            for t in wf.true_atoms.iter() {
                prop_assert!(m.contains(t));
            }
            for f in wf.false_atoms.iter() {
                prop_assert!(!m.contains(f));
            }
        }
        // Distinct stable models are incomparable (anti-chain property).
        for (i, m1) in models.iter().enumerate() {
            for m2 in models.iter().skip(i + 1) {
                prop_assert!(!m1.is_subset_of(m2) && !m2.is_subset_of(m1));
            }
        }
    }
}

/// Random small network databases for chase-level properties.
fn network_db_strategy() -> impl Strategy<Value = Database> {
    (2usize..4, prop::collection::vec(any::<bool>(), 6)).prop_map(|(n, edge_bits)| {
        let mut db = Database::new();
        let mut bit = 0usize;
        for i in 1..=n as i64 {
            db.insert_fact("Router", [Const::Int(i)]);
        }
        for i in 1..=n as i64 {
            for j in (i + 1)..=n as i64 {
                if edge_bits[bit % edge_bits.len()] {
                    db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
                    db.insert_fact("Connected", [Const::Int(j), Const::Int(i)]);
                }
                bit += 1;
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 3.9 + Lemma 4.4 on random small networks: the explored mass
    /// plus the residual is exactly 1, the chase result does not depend on
    /// the trigger order, and every outcome label is functionally consistent
    /// (Lemma 4.3(1)) and distinct (4.3(2)).
    #[test]
    fn chase_invariants_on_random_networks(db in network_db_strategy(), p in 1u32..=9u32) {
        let program = network_resilience_program(p as f64 / 10.0);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let grounder = SimpleGrounder::new(sigma);
        let budget = ChaseBudget::default();

        let run = |order| enumerate_outcomes(&grounder, &budget, order).unwrap();
        let first = run(TriggerOrder::First);
        let last = run(TriggerOrder::Last);

        // Total probability mass is exactly one (all probabilities exact).
        prop_assert_eq!(first.total_mass(), Prob::ONE);

        // Order independence: same multiset of (choice set, probability).
        let canon = |r: &gdlog::core::ChaseResult| {
            let mut v: Vec<String> = r
                .outcomes
                .iter()
                .map(|o| format!("{}@{}", o.atr, o.probability))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(canon(&first), canon(&last));

        // Outcomes are pairwise distinct and terminal for the grounder.
        for (i, o1) in first.outcomes.iter().enumerate() {
            prop_assert!(grounder.is_terminal(&o1.atr));
            for o2 in first.outcomes.iter().skip(i + 1) {
                prop_assert!(o1.atr != o2.atr);
            }
        }
    }
}

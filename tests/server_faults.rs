//! Fault injection against the resident server: the robustness acceptance
//! suite. Under every injected fault class — per-query deadlines, malformed
//! and oversized frames, clients that hang up mid-queue, and chaos-layer
//! transport corruption against the **real `gdlog serve` binary** — the
//! server must keep serving, concurrent healthy sessions must answer
//! byte-identically to the committed goldens, and every degraded outcome
//! must be typed: a graceful partial response with an exact residual mass,
//! or a `deadline-exceeded` / `overloaded` wire error. Never a crash, never
//! a hang, never silent corruption.

mod common;

use common::{directive_args, manifest_dir, scenario_files};
use gdlog_server::{start, ClientError, ErrorCode, RetryPolicy, ServeClient, ServeConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The coin program of the corpus: two outcomes, instant to solve.
const COIN: &str = "-> Coin(Flip<0.5>).\nCoin(0) -> false.\n";

/// Eighteen independent coins: 2^18 joint outcomes — far more than a
/// millisecond deadline allows, so enumeration is guaranteed to be cut.
fn coin_farm(n: usize) -> String {
    let mut src = String::from("Coin(x) -> Toss(x, Flip<0.5>[x]).\n");
    for i in 1..=n {
        src.push_str(&format!("Coin({i}).\n"));
    }
    src
}

fn ephemeral() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: Some(1),
        ..ServeConfig::default()
    }
}

/// Scrape `"<key>": {... "num": N, "den": D ...}` out of a response body —
/// the renderer is ours, so the shape is fixed and a split suffices.
fn mass(body: &str, key: &str) -> (i128, i128) {
    let obj = body
        .split_once(&format!("\"{key}\": {{"))
        .unwrap_or_else(|| panic!("missing {key} in {body}"))
        .1;
    let field = |name: &str| -> i128 {
        obj.split_once(&format!("\"{name}\": "))
            .and_then(|(_, rest)| {
                rest.split(|c: char| !c.is_ascii_digit() && c != '-')
                    .next()?
                    .parse()
                    .ok()
            })
            .unwrap_or_else(|| panic!("missing {key}.{name} in {body}"))
    };
    (field("num"), field("den"))
}

/// A deadline that fires mid-enumeration degrades gracefully: the response
/// is `OK`, marked interrupted, and the explored/residual split is exact —
/// the two masses sum to exactly one even though the walk was cut short.
#[test]
fn deadline_degrades_gracefully_with_exact_residual_mass() {
    let mut server = start(&ephemeral()).expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.open("farm.gdl", &coin_farm(18)).expect("open");
    let body = client
        .query("farm.gdl", &["--timeout-ms", "1"])
        .expect("interrupted enumeration still answers OK");
    assert!(
        body.contains("\"interrupted\": true"),
        "1ms cannot enumerate 2^18 outcomes: {body}"
    );
    let (en, ed) = mass(&body, "explored_mass");
    let (rn, rd) = mass(&body, "residual_mass");
    assert!(rn > 0, "a cut walk must report residual mass: {body}");
    // explored + residual == 1, as exact rationals: en/ed + rn/rd == 1.
    assert_eq!(en * rd + rn * ed, ed * rd, "masses must sum to one: {body}");
    server.stop();
}

/// The server-wide default deadline applies to requests that carry none,
/// and a request's own `--timeout-ms` wins over it in both directions.
#[test]
fn server_default_deadline_applies_and_the_request_overrides_it() {
    let config = ServeConfig {
        timeout_ms: Some(1),
        ..ephemeral()
    };
    let mut server = start(&config).expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.open("farm.gdl", &coin_farm(18)).expect("open");

    // No per-request deadline: the server default (1ms) cuts the walk.
    let body = client.query("farm.gdl", &[]).expect("graceful degradation");
    assert!(body.contains("\"interrupted\": true"), "{body}");

    // A generous per-request deadline overrides the tight default: a small
    // program completes cleanly under it.
    client.open("small.gdl", &coin_farm(3)).expect("open");
    let body = client
        .query("small.gdl", &["--timeout-ms", "60000"])
        .expect("query");
    assert!(!body.contains("interrupted"), "{body}");
    assert_eq!(mass(&body, "residual_mass").0, 0, "{body}");
    server.stop();
}

/// Monte-Carlo estimates are exact-sample-count-or-nothing: a deadline that
/// fires mid-walk is a typed `deadline-exceeded` wire error, not a silently
/// low-sample estimate.
#[test]
fn monte_carlo_past_the_deadline_is_a_typed_wire_error() {
    let mut server = start(&ephemeral()).expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.open("coin.gdl", COIN).expect("open");
    let err = client
        .query(
            "coin.gdl",
            &[
                "--query",
                "Coin(1)",
                "--mc",
                "200000000",
                "--seed",
                "7",
                "--timeout-ms",
                "10",
            ],
        )
        .expect_err("200M samples cannot finish in 10ms");
    match err {
        ClientError::Serve(e) => {
            assert_eq!(e.code, ErrorCode::DeadlineExceeded, "{}", e.message);
            assert!(e.message.contains("monte-carlo"), "{}", e.message);
        }
        other => panic!("expected a typed wire error, got {other}"),
    }
    // The connection is not poisoned: the same session answers normally.
    let body = client
        .query("coin.gdl", &["--query", "Coin(1)"])
        .expect("query after deadline error");
    assert!(body.contains("\"p_stable\""), "{body}");
    server.stop();
}

/// Drive raw corruption at the server — binary garbage, an oversized
/// body-length, an unbounded header — and assert each costs only its own
/// connection. A fresh client gets full service afterwards.
#[test]
fn corrupt_frames_cost_the_connection_not_the_server() {
    let mut server = start(&ephemeral()).expect("bind");
    let addr = server.local_addr();

    let assert_torn_down = |mut stream: TcpStream, what: &str| {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut sink = Vec::new();
        // The server answers nothing to an unreadable frame; it tears the
        // connection down. EOF (Ok) and reset (Err) both prove teardown —
        // a timeout would mean the server hung on garbage.
        match stream.read_to_end(&mut sink) {
            Ok(_) => {}
            Err(e) => assert!(
                e.kind() != std::io::ErrorKind::WouldBlock
                    && e.kind() != std::io::ErrorKind::TimedOut,
                "{what}: server hung instead of tearing down: {e}"
            ),
        }
    };

    // Binary garbage where a frame header belongs.
    let mut garbage = TcpStream::connect(addr).expect("connect");
    garbage
        .write_all(b"\x00\xff\xfe not a frame \x7f\n")
        .expect("write");
    assert_torn_down(garbage, "binary garbage");

    // A header whose declared body length exceeds the frame cap.
    let mut oversized = TcpStream::connect(addr).expect("connect");
    oversized
        .write_all(format!("PING {}\n", u64::MAX).as_bytes())
        .expect("write");
    assert_torn_down(oversized, "oversized body length");

    // A header that never ends: the reader caps it instead of buffering
    // unboundedly.
    let mut unbounded = TcpStream::connect(addr).expect("connect");
    let _ = unbounded.write_all(&vec![b'A'; 256 << 10]);
    assert_torn_down(unbounded, "unbounded header");

    // Three poisoned connections later, the server serves a healthy one.
    let mut client = ServeClient::connect(addr).expect("connect");
    assert_eq!(client.ping().expect("ping"), "pong");
    client.open("coin.gdl", COIN).expect("open");
    let body = client
        .query("coin.gdl", &["--query", "Coin(1)"])
        .expect("query");
    assert!(body.contains("\"p_stable\""), "{body}");
    server.stop();
}

/// A client that hangs up while queued for admission gives its queue entry
/// back promptly — no leaked slot, a typed `abandoned` count in STATS, and
/// the freed capacity serves the next live client.
#[test]
fn queued_disconnect_releases_the_queue_entry() {
    let config = ServeConfig {
        max_inflight: 1,
        max_queued: 1,
        ..ephemeral()
    };
    let mut server = start(&config).expect("bind");
    let addr = server.local_addr();

    // Wedge the only solve slot, exactly as a long-running query would.
    let wedge = server.sessions().admission().acquire().expect("pin slot");

    // A raw connection opens a session, fires a query (which parks in the
    // admission queue), then hangs up without reading the answer.
    let quitter = TcpStream::connect(addr).expect("connect");
    let mut writer = quitter.try_clone().expect("clone");
    let mut reader = BufReader::new(quitter);
    netline::write_frame(
        &mut writer,
        &netline::Frame::new("OPEN coin.gdl", COIN.as_bytes().to_vec()),
    )
    .expect("open");
    let opened = netline::read_frame(&mut reader)
        .expect("read")
        .expect("frame");
    assert_eq!(opened.head, "OK");
    netline::write_frame(
        &mut writer,
        &netline::Frame::new("QUERY coin.gdl", b"--query\nCoin(1)\n".to_vec()),
    )
    .expect("query");
    // Wait until the query is parked in the queue, then hang up.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.sessions().admission().load().1 == 0 {
        assert!(Instant::now() < deadline, "query never reached the queue");
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(writer);
    drop(reader);

    // The probe notices the hang-up and the queue entry comes back even
    // though the wedged slot never freed.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.sessions().admission().load().1 != 0 {
        assert!(
            Instant::now() < deadline,
            "abandoned queue entry was never released"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // STATS sees the abandonment (STATS bypasses admission, so the wedged
    // slot cannot block it), and a live client gets the freed capacity.
    let mut client = ServeClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"abandoned\": 1"), "{stats}");
    drop(wedge);
    client.open("coin.gdl", COIN).expect("open");
    let body = client
        .query("coin.gdl", &["--query", "Coin(1)"])
        .expect("query");
    assert!(body.contains("\"p_stable\""), "{body}");
    assert_eq!(server.sessions().admission().load(), (0, 0));
    server.stop();
}

/// A panicking query worker costs exactly its own connection. The protocol
/// itself has no panicking input by construction, so this wraps the real
/// `Protocol` in a handler that panics on one magic head and delegates
/// everything else — the client on the panicking connection receives
/// `Protocol`'s typed `internal-error` frame before teardown, and a second
/// live connection keeps answering normally.
#[test]
fn panicking_query_costs_one_connection_not_the_server() {
    use gdlog_core::Executor;
    use gdlog_server::{Protocol, SessionManager};
    use std::sync::Arc;

    struct PanicOn(Protocol);
    impl netline::Handler for PanicOn {
        fn handle(&self, request: netline::Frame) -> netline::Frame {
            self.handle_on(u64::MAX, request)
        }
        fn handle_on(&self, conn_id: u64, request: netline::Frame) -> netline::Frame {
            if request.head == "BOOM" {
                panic!("injected query-worker panic");
            }
            self.0.handle_on(conn_id, request)
        }
        fn attached(&self, conn_id: u64, probe: netline::ConnProbe) {
            self.0.attached(conn_id, probe);
        }
        fn disconnected(&self, conn_id: u64) {
            self.0.disconnected(conn_id);
        }
        fn panic_response(&self, conn_id: u64) -> netline::Frame {
            self.0.panic_response(conn_id)
        }
    }

    let sessions = SessionManager::new(Arc::new(Executor::sequential()), 4, 16);
    let server = netline::Server::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut handle = server.spawn(Arc::new(PanicOn(Protocol::new(sessions))));

    let mut bystander = ServeClient::connect(addr).expect("connect");
    bystander.open("coin.gdl", COIN).expect("open");

    let mut victim = netline::Client::connect(addr).expect("connect");
    let response = victim.call("BOOM", Vec::new()).expect("typed panic frame");
    assert_eq!(
        response.head,
        "ERR internal-error",
        "{}",
        response.body_text()
    );
    assert!(
        response.body_text().contains("panicked"),
        "{}",
        response.body_text()
    );
    // The victim's connection is then torn down...
    assert!(
        victim.call("PING", Vec::new()).is_err(),
        "panicked connection must be closed"
    );
    // ...while the bystander's session keeps answering.
    let body = bystander
        .query("coin.gdl", &["--query", "Coin(1)"])
        .expect("bystander query after the panic");
    assert!(body.contains("\"p_stable\""), "{body}");
    handle.stop();
}

/// Spawn the real `gdlog serve` binary with the given chaos spec injected
/// via `GDLOG_CHAOS` (set on the child only — never on this test process)
/// and return the child plus its bound address.
fn spawn_serve_with_chaos(spec: &str) -> (Child, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gdlog"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "1"])
        .env("GDLOG_CHAOS", spec)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn gdlog serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("serve prints its banner")
        .expect("readable banner");
    // "serving on 127.0.0.1:PORT (inflight N, queued M)"
    let addr = banner
        .strip_prefix("serving on ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|addr| addr.parse().ok())
        .unwrap_or_else(|| panic!("unparseable serve banner: {banner}"));
    (child, addr)
}

fn assert_alive(child: &mut Child, context: &str) {
    match child.try_wait().expect("try_wait") {
        None => {}
        Some(status) => panic!("{context}: server process exited with {status}"),
    }
}

/// Byte-preserving chaos (delivery delays, mid-frame stalls) on **every**
/// connection of a real `gdlog serve` process: the full scenario corpus,
/// replayed over the degraded wire, still answers byte-identically to the
/// committed goldens, and the server process survives.
#[test]
fn corpus_over_byte_preserving_chaos_is_still_golden_identical() {
    let (mut child, addr) = spawn_serve_with_chaos("every=1,seed=42,delay=1,stall=1");
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .set_io_timeout(Some(Duration::from_secs(60)))
        .expect("io timeout");
    for (name, path) in scenario_files() {
        let source = std::fs::read_to_string(&path).expect("scenario readable");
        let rel = format!("scenarios/{name}.gdl");
        let golden = std::fs::read_to_string(
            manifest_dir()
                .join("scenarios/golden")
                .join(format!("{name}.json")),
        )
        .expect("golden readable");
        client.open(&rel, &source).expect("open under chaos");
        let args = directive_args(&source);
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let body = client.query(&rel, &argv).expect("query under chaos");
        assert_eq!(
            body, golden,
            "{name}: response corrupted by delay/stall chaos"
        );
    }
    assert_alive(&mut child, "after byte-preserving chaos replay");
    child.kill().expect("kill");
    child.wait().expect("wait");
}

/// Corrupting chaos (dropped, truncated and garbled responses) on half the
/// connections of a real `gdlog serve` process: a retry-armed client still
/// converges on the exact golden bytes every single time — corruption costs
/// latency, never correctness — and the server process survives.
#[test]
fn retry_armed_client_survives_corrupting_chaos() {
    let (mut child, addr) = spawn_serve_with_chaos("every=2,seed=3,drop=2,truncate=3,garbage=4");
    // Connection order is the accept order: the retry client takes conn 0
    // (chaotic — even ids roll faults under `every=2`), the healthy witness
    // takes conn 1 and must never see a fault.
    let mut client = ServeClient::connect(addr).expect("connect");
    let mut healthy = ServeClient::connect(addr).expect("connect witness");
    client
        .set_io_timeout(Some(Duration::from_secs(30)))
        .expect("io timeout");
    client.set_retry_policy(Some(RetryPolicy {
        attempts: 8,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(50),
        seed: 9,
    }));

    let (name, path) = scenario_files()
        .into_iter()
        .find(|(name, _)| name == "coin")
        .expect("coin scenario exists");
    let source = std::fs::read_to_string(&path).expect("scenario readable");
    let golden = std::fs::read_to_string(
        manifest_dir()
            .join("scenarios/golden")
            .join(format!("{name}.json")),
    )
    .expect("golden readable");
    let rel = format!("scenarios/{name}.gdl");
    client
        .open(&rel, &source)
        .expect("open retries through chaos");
    healthy.open(&rel, &source).expect("healthy open");
    let args = directive_args(&source);
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    for round in 0..8 {
        let body = client
            .query(&rel, &argv)
            .unwrap_or_else(|e| panic!("round {round}: retries exhausted: {e}"));
        assert_eq!(
            body, golden,
            "round {round}: corruption leaked into a response"
        );
        // The concurrent healthy session rides the same server, retry-free,
        // and must stay byte-identical while chaos rages next door.
        let body = healthy
            .query(&rel, &argv)
            .unwrap_or_else(|e| panic!("round {round}: healthy witness failed: {e}"));
        assert_eq!(
            body, golden,
            "round {round}: healthy session perturbed by chaos"
        );
    }
    assert_alive(&mut child, "after corrupting chaos rounds");
    child.kill().expect("kill");
    child.wait().expect("wait");
}

/// A malformed chaos spec is a loud startup error, not a silently
/// chaos-free server — fault injection that fails to arm must never report
/// green robustness runs.
#[test]
fn malformed_chaos_spec_fails_startup_loudly() {
    let output = Command::new(env!("CARGO_BIN_EXE_gdlog"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .env("GDLOG_CHAOS", "every=0,frobnicate=9")
        .output()
        .expect("run gdlog serve");
    assert!(
        !output.status.success(),
        "malformed chaos spec must not serve"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error"), "stderr: {stderr}");
}

//! Compare the probability spaces induced by the simple and the perfect
//! grounder (Definition 3.11, Theorems 3.12 and 5.3) and inspect the
//! dependency graph / stratification of a program (Figure 1).
//!
//! Run with: `cargo run --example grounder_comparison`

use gdlog::core::{
    compare_outputs, dependency_graph, dime_quarter_program, stratification, GrounderChoice,
    Pipeline,
};
use gdlog::data::{Const, Database};

fn main() {
    let program = dime_quarter_program();
    let mut db = Database::new();
    for d in 1..=3i64 {
        db.insert_fact("Dime", [Const::Int(d)]);
    }
    db.insert_fact("Quarter", [Const::Int(4)]);

    // Figure 1: the dependency graph (dashed arcs are negative edges) and its
    // stratification.
    let graph = dependency_graph(&program);
    println!("dependency graph (GraphViz):\n{graph}\n");
    let strata = stratification(&program).expect("the program is stratified");
    println!("strata (bottom-up):");
    for (i, stratum) in strata.strata().iter().enumerate() {
        let names: Vec<String> = stratum.iter().map(|p| p.to_string()).collect();
        println!("  C{} = {{{}}}", i + 1, names.join(", "));
    }

    // Evaluate with both grounders and compare event by event.
    let perfect = Pipeline::with_grounder(&program, &db, GrounderChoice::Perfect)
        .unwrap()
        .solve()
        .unwrap();
    let simple = Pipeline::with_grounder(&program, &db, GrounderChoice::Simple)
        .unwrap()
        .solve()
        .unwrap();

    println!(
        "\nperfect grounder: {} outcomes over {} events",
        perfect.outcome_count(),
        perfect.event_count()
    );
    println!(
        "simple grounder : {} outcomes over {} events",
        simple.outcome_count(),
        simple.event_count()
    );

    let cmp = compare_outputs(&perfect, &simple);
    println!("\nper-event masses (perfect vs simple):");
    for (key, left, right) in &cmp.events {
        println!(
            "  mass {left} vs {right}  ({} stable model(s) in the event)",
            key.model_count()
        );
    }
    println!(
        "\nperfect as good as simple: {} (Theorem 5.3)",
        cmp.left_as_good_as_right
    );
    println!("simple as good as perfect: {}", cmp.right_as_good_as_left);
    assert!(cmp.left_as_good_as_right);
}

//! Quickstart: parse a GDatalog¬[Δ] program, evaluate it, and query the
//! output probability space.
//!
//! Run with: `cargo run --example quickstart`

use gdlog::parser::parse_program;
use gdlog::prelude::*;

fn main() {
    // The network-resilience program of Example 3.1, together with the
    // 3-router database of Example 3.6, in the paper's surface syntax.
    let source = r#"
        % malware propagation: an infected router infects each neighbour
        % independently with probability 0.1
        Infected(x, 1), Connected(x, y) -> Infected(y, Flip<0.1>[x, y]).

        % a router that is not infected is uninfected
        Router(x), not Infected(x, 1) -> Uninfected(x).

        % the malware fails to dominate the network if two uninfected routers
        % are connected
        Uninfected(x), Uninfected(y), Connected(x, y) -> false.

        % the database: a clique of three routers, router 1 initially infected
        Router(1). Router(2). Router(3).
        Connected(1, 2). Connected(2, 1).
        Connected(1, 3). Connected(3, 1).
        Connected(2, 3). Connected(3, 2).
        Infected(1, 1).
    "#;

    let (program, database) = parse_program(source).expect("the program parses");
    println!("parsed program:\n{program}");
    println!("database has {} facts\n", database.len());

    // Translate, ground, chase and build the output probability space.
    let pipeline = Pipeline::new(&program, &database).expect("valid program");
    let space = pipeline.solve().expect("evaluation succeeds");

    println!("finite possible outcomes : {}", space.outcome_count());
    println!("distinct events          : {}", space.event_count());
    println!("residual / error mass    : {}", space.residual_mass());

    // Example 3.10: the network is dominated by the malware iff the program
    // has some stable model; the paper computes 1 − 0.9² = 0.19.
    let dominated = space.has_stable_model_probability();
    println!(
        "P(network dominated)     : {} ≈ {:.4}",
        dominated,
        dominated.to_f64()
    );
    assert_eq!(dominated, Prob::ratio(19, 100));

    // Marginals of individual atoms.
    for router in 2..=3i64 {
        let infected = gdlog::core::brave_fact_probability(
            &space,
            "Infected",
            [Const::Int(router), Const::Int(1)],
        );
        println!(
            "P(router {router} infected in some stable model) = {:.4}",
            infected.to_f64()
        );
    }
}

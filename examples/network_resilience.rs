//! Network resilience at scale: sweep topologies and infection probabilities,
//! switching from exact enumeration to Monte-Carlo sampling when the chase
//! tree becomes too large.
//!
//! Run with: `cargo run --release --example network_resilience`

use gdlog::core::{network_resilience_program, McParams, Pipeline};
use gdlog::data::{Const, Database};
use gdlog_engine::StableModelLimits;

/// Build a ring network of `n` routers with router 1 infected.
fn ring(n: i64) -> Database {
    let mut db = Database::new();
    for i in 1..=n {
        db.insert_fact("Router", [Const::Int(i)]);
        let j = if i == n { 1 } else { i + 1 };
        if i != j {
            db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
            db.insert_fact("Connected", [Const::Int(j), Const::Int(i)]);
        }
    }
    db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
    db
}

fn main() {
    let limits = StableModelLimits::default();

    println!("exact enumeration on small rings");
    println!("{:>4} {:>6} {:>10} {:>10}", "n", "p", "#outcomes", "P(dom)");
    for n in [3i64, 4, 5] {
        for p in [0.1, 0.3] {
            let pipeline = Pipeline::new(&network_resilience_program(p), &ring(n)).unwrap();
            let space = pipeline.solve().unwrap();
            println!(
                "{:>4} {:>6} {:>10} {:>10.4}",
                n,
                p,
                space.outcome_count(),
                space.has_stable_model_probability().to_f64()
            );
        }
    }

    println!("\nMonte-Carlo sampling on a larger ring (n = 12)");
    println!(
        "{:>6} {:>10} {:>12} {:>10}",
        "p", "samples", "P(dom) est.", "std err"
    );
    for p in [0.1, 0.3, 0.5] {
        let pipeline = Pipeline::new(&network_resilience_program(p), &ring(12)).unwrap();
        let mut mc = pipeline.sampler_with(McParams::new().with_max_triggers(512).with_seed(2023));
        let stats = mc
            .estimate(500, |outcome| {
                !outcome.stable_models(&limits).unwrap().is_empty()
            })
            .unwrap();
        println!(
            "{:>6} {:>10} {:>12.4} {:>10.4}",
            p, stats.samples, stats.estimate.mean, stats.estimate.std_error
        );
    }
}

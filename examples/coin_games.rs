//! The coin program of Section 3 and the dimes-and-quarters example of
//! Appendix E: non-stratified vs. stratified negation, simple vs. perfect
//! grounder.
//!
//! Run with: `cargo run --example coin_games`

use gdlog::core::{coin_program, dime_quarter_program, GrounderChoice, Pipeline};
use gdlog::data::{Const, Database, GroundAtom};
use gdlog::prob::Prob;

fn main() {
    // --- The coin program (non-stratified: Aux1/Aux2 form an even loop) ---
    let program = coin_program();
    println!("Π_coin:\n{program}");
    let pipeline = Pipeline::new(&program, &Database::new()).unwrap();
    let space = pipeline.solve().unwrap();
    println!("possible outcomes : {}", space.outcome_count());
    for (outcome, key) in space.outcomes() {
        println!(
            "  Pr = {}  choices = {}  stable models = {}",
            outcome.probability,
            outcome.choice_count(),
            key.model_count()
        );
    }
    println!(
        "P(some stable model) = {} (the paper: 0.5)\n",
        space.has_stable_model_probability()
    );
    assert_eq!(space.has_stable_model_probability(), Prob::ratio(1, 2));

    // --- Dimes and quarters (stratified: use the perfect grounder) ---
    let program = dime_quarter_program();
    let mut db = Database::new();
    db.insert_fact("Dime", [Const::Int(1)]);
    db.insert_fact("Dime", [Const::Int(2)]);
    db.insert_fact("Quarter", [Const::Int(3)]);
    println!("Appendix E program (2 dimes, 1 quarter):\n{program}");

    let perfect = Pipeline::with_grounder(&program, &db, GrounderChoice::Perfect)
        .unwrap()
        .solve()
        .unwrap();
    let simple = Pipeline::with_grounder(&program, &db, GrounderChoice::Simple)
        .unwrap()
        .solve()
        .unwrap();
    println!(
        "perfect grounder: {} outcomes, simple grounder: {} outcomes",
        perfect.outcome_count(),
        simple.outcome_count()
    );

    let some_tail = GroundAtom::make("SomeDimeTail", vec![]);
    println!(
        "P(SomeDimeTail)      = {} (expected 3/4)",
        perfect.cautious_probability(&some_tail)
    );
    let quarter_tail = GroundAtom::make("QuarterTail", vec![Const::Int(3), Const::Int(1)]);
    println!(
        "P(QuarterTail(3, 1)) = {} (expected 1/8)",
        perfect.cautious_probability(&quarter_tail)
    );
    assert_eq!(
        perfect.cautious_probability(&quarter_tail),
        Prob::ratio(1, 8)
    );
}
